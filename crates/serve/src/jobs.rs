//! Job requests, states, and execution.
//!
//! A job is one parsed, validated `POST /v1/jobs` body: a `.stab` spec
//! plus a kind (`verify` | `sweep` | `synthesize`), a K range, and
//! budgets. Validation happens **at submit** — malformed JSON or an
//! unparsable/over-budget spec is rejected with a structured error before
//! anything reaches the pool, so queued work is always runnable.
//!
//! Execution ([`execute`]) is the CLI's own pipeline re-expressed for a
//! service: the same fused scan + livelock DFS (or Section-6 synthesis)
//! under a [`CancelToken`], with per-phase durations accumulated into the
//! job's [`JobTelemetry`] so `GET /v1/jobs/:id` can show where the time
//! went. A deadline that fires mid-run yields the rows completed so far
//! as a *partial* document — served with 504, never cached.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use selfstab_campaign::telemetry::JobTelemetry;
use selfstab_core::{spec_hash, SpecHash};
use selfstab_global::check::ConvergenceReport;
use selfstab_global::engine::{find_livelock_metered, fused_scan_metered};
use selfstab_global::{instance, CancelToken, EngineConfig, RingInstance, SymmetryMode};
use selfstab_protocol::file::parse_protocol_file;
use selfstab_protocol::Protocol;
use selfstab_synth::{LocalSynthesizer, SynthesisConfig};
use selfstab_telemetry::{EngineCounters, Phase, SynthesisCounters};
use serde_json::{json, Value};

use crate::cache::CachedDoc;
use crate::render;
use crate::trace::JobTrace;

/// What the job computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// One fixed-K convergence check (`check --k K`).
    Verify,
    /// A K-range of convergence checks (`check --k FROM --to TO`).
    Sweep,
    /// Section-6 local synthesis (`synthesize`).
    Synthesize,
}

impl JobKind {
    /// The wire name, as it appears in request bodies and status
    /// documents.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Verify => "verify",
            JobKind::Sweep => "sweep",
            JobKind::Synthesize => "synthesize",
        }
    }

    /// A dense index ordered by typical cost — `verify` (0) is cheapest,
    /// `synthesize` (2) dearest. Admission control sheds the most
    /// expensive kinds first under memory pressure.
    pub fn index(self) -> usize {
        match self {
            JobKind::Verify => 0,
            JobKind::Sweep => 1,
            JobKind::Synthesize => 2,
        }
    }

    /// Parses a wire name back to a kind (the admission pre-check uses
    /// this before full request validation).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "verify" => Some(JobKind::Verify),
            "sweep" => Some(JobKind::Sweep),
            "synthesize" => Some(JobKind::Synthesize),
            _ => None,
        }
    }
}

/// Why a submit was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The request body itself is unusable (missing/ill-typed fields,
    /// unknown kind) — HTTP 400.
    BadRequest(String),
    /// The body is well-formed but the spec cannot run (parse error,
    /// over-budget instance) — HTTP 422.
    BadSpec(String),
}

impl SubmitError {
    /// The HTTP status this rejection maps to.
    pub fn status(&self) -> u16 {
        match self {
            SubmitError::BadRequest(_) => 400,
            SubmitError::BadSpec(_) => 422,
        }
    }

    /// The machine-readable `code` for the structured error body.
    pub fn code(&self) -> &'static str {
        match self {
            SubmitError::BadRequest(_) => "bad_request",
            SubmitError::BadSpec(_) => "bad_spec",
        }
    }

    /// The human-readable reason.
    pub fn message(&self) -> &str {
        match self {
            SubmitError::BadRequest(m) | SubmitError::BadSpec(m) => m,
        }
    }
}

/// A validated job request: everything execution needs, plus the spec's
/// canonical hash for cache addressing.
#[derive(Debug)]
pub struct JobRequest {
    /// What to compute.
    pub kind: JobKind,
    /// The parsed protocol.
    pub protocol: Protocol,
    /// Canonical parse-tree hash of the spec (see [`selfstab_core::hash`]).
    pub hash: SpecHash,
    /// First ring size (ignored by `synthesize`).
    pub k_from: usize,
    /// Last ring size, inclusive (equals `k_from` for `verify`).
    pub k_to: usize,
    /// Per-instance global-state budget.
    pub max_states: u64,
    /// Rotation-symmetry policy for the scan.
    pub symmetry: SymmetryMode,
    /// Engine threads per job (results are thread-count-invariant).
    pub threads: usize,
    /// Wall-clock deadline for the whole job.
    pub timeout: Option<Duration>,
    /// `synthesize` only: stop after this many accepted solutions.
    pub max_solutions: usize,
    /// `synthesize` only: candidate-combination budget.
    pub max_combinations: usize,
    /// `synthesize` only: `Resolve`-set budget.
    pub max_resolve_sets: usize,
    /// `synthesize` only: monotone lattice pruning (outcome-invariant).
    pub prune: bool,
}

fn usize_field(body: &Value, key: &str) -> Result<Option<usize>, SubmitError> {
    match &body[key] {
        Value::Null => Ok(None),
        v => v.as_u64().map(|n| Some(n as usize)).ok_or_else(|| {
            SubmitError::BadRequest(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

impl JobRequest {
    /// Parses and validates a `POST /v1/jobs` body.
    ///
    /// # Errors
    ///
    /// [`SubmitError::BadRequest`] for structural problems (400),
    /// [`SubmitError::BadSpec`] for a spec that parses as JSON but cannot
    /// run (422).
    pub fn from_json(body: &Value) -> Result<Self, SubmitError> {
        let kind = match body["kind"].as_str() {
            Some("verify") => JobKind::Verify,
            Some("sweep") => JobKind::Sweep,
            Some("synthesize") => JobKind::Synthesize,
            Some(other) => {
                return Err(SubmitError::BadRequest(format!(
                    "unknown kind `{other}` (expected verify, sweep, or synthesize)"
                )))
            }
            None => {
                return Err(SubmitError::BadRequest(
                    "field `kind` is required and must be a string".to_owned(),
                ))
            }
        };
        let spec = body["spec"].as_str().ok_or_else(|| {
            SubmitError::BadRequest("field `spec` is required and must be a string".to_owned())
        })?;
        let protocol = parse_protocol_file(spec)
            .map_err(|e| SubmitError::BadSpec(format!("spec does not parse: {e}")))?;
        let hash = spec_hash(&protocol);

        let (k_from, k_to) = match kind {
            JobKind::Synthesize => {
                // Synthesis quantifies over every ring size; a K field in
                // the body is a caller mistake worth flagging.
                if !body["k"].is_null() || !body["to"].is_null() {
                    return Err(SubmitError::BadRequest(
                        "`synthesize` takes no `k`/`to` fields".to_owned(),
                    ));
                }
                (0, 0)
            }
            JobKind::Verify => {
                if !body["to"].is_null() {
                    return Err(SubmitError::BadRequest(
                        "`verify` checks one size; use kind `sweep` for a range".to_owned(),
                    ));
                }
                let k = usize_field(body, "k")?
                    .ok_or_else(|| SubmitError::BadRequest("field `k` is required".to_owned()))?;
                (k, k)
            }
            JobKind::Sweep => {
                let from = usize_field(body, "k")?
                    .ok_or_else(|| SubmitError::BadRequest("field `k` is required".to_owned()))?;
                let to = usize_field(body, "to")?.unwrap_or(from);
                if to < from {
                    return Err(SubmitError::BadRequest(
                        "`to` must be at least `k`".to_owned(),
                    ));
                }
                (from, to)
            }
        };
        if kind != JobKind::Synthesize && k_from < 2 {
            return Err(SubmitError::BadRequest(
                "`k` must be at least 2 (a ring needs two processes)".to_owned(),
            ));
        }

        let max_states = match &body["max_states"] {
            Value::Null => instance::DEFAULT_MAX_STATES,
            v => v.as_u64().ok_or_else(|| {
                SubmitError::BadRequest(
                    "field `max_states` must be a non-negative integer".to_owned(),
                )
            })?,
        };
        // Budget precheck: reject a d^K blowup at submit instead of
        // queueing a job that can only fail.
        if kind != JobKind::Synthesize {
            let d = protocol.domain().size() as u64;
            let over = (d.checked_pow(k_to as u32)).is_none_or(|n| n > max_states);
            if over {
                return Err(SubmitError::BadSpec(format!(
                    "instance over budget: {d}^{k_to} global states exceeds max_states {max_states}"
                )));
            }
        }

        let symmetry: SymmetryMode = match body["symmetry"].as_str() {
            None if body["symmetry"].is_null() => SymmetryMode::Auto,
            None => {
                return Err(SubmitError::BadRequest(
                    "field `symmetry` must be a string".to_owned(),
                ))
            }
            Some(s) => s
                .parse()
                .map_err(|e| SubmitError::BadRequest(format!("field `symmetry`: {e}")))?,
        };
        // Synthesis knobs: meaningful only for `synthesize` jobs, so on
        // any other kind their presence is a caller mistake worth
        // flagging (they would otherwise be silently ignored).
        if kind != JobKind::Synthesize {
            for key in [
                "max_solutions",
                "max_combinations",
                "max_resolve_sets",
                "prune",
            ] {
                if !body[key].is_null() {
                    return Err(SubmitError::BadRequest(format!(
                        "field `{key}` applies only to `synthesize` jobs"
                    )));
                }
            }
        }
        let synth_defaults = SynthesisConfig::default();
        let max_solutions =
            usize_field(body, "max_solutions")?.unwrap_or(synth_defaults.max_solutions);
        if max_solutions == 0 {
            return Err(SubmitError::BadRequest(
                "field `max_solutions` must be at least 1".to_owned(),
            ));
        }
        let max_combinations =
            usize_field(body, "max_combinations")?.unwrap_or(synth_defaults.max_combinations);
        let max_resolve_sets =
            usize_field(body, "max_resolve_sets")?.unwrap_or(synth_defaults.max_resolve_sets);
        let prune = match &body["prune"] {
            Value::Null => synth_defaults.prune,
            v => v.as_bool().ok_or_else(|| {
                SubmitError::BadRequest("field `prune` must be a boolean".to_owned())
            })?,
        };

        let threads = usize_field(body, "threads")?.unwrap_or(1).max(1);
        let timeout = match &body["timeout_ms"] {
            Value::Null => None,
            v => Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
                SubmitError::BadRequest(
                    "field `timeout_ms` must be a non-negative integer".to_owned(),
                )
            })?)),
        };

        Ok(JobRequest {
            kind,
            protocol,
            hash,
            k_from,
            k_to,
            max_states,
            symmetry,
            threads,
            timeout,
            max_solutions,
            max_combinations,
            max_resolve_sets,
            prune,
        })
    }

    /// The content address of this request's *completed* result: the
    /// canonical spec hash plus every input the rendered document depends
    /// on. Engine `threads` is deliberately excluded (documents are
    /// thread-count-invariant), as is `timeout_ms` (only completed,
    /// deadline-independent results are ever cached). `synthesize` keys
    /// additionally carry the synthesis budgets and the prune mode —
    /// differing budgets truncate the outcome differently, so they must
    /// not alias to the same cached bytes.
    pub fn cache_key(&self) -> String {
        let symmetry = match self.symmetry {
            SymmetryMode::Auto => "auto",
            SymmetryMode::Full => "full",
            SymmetryMode::Reduced => "reduced",
        };
        let mut key = format!(
            "{}:{}:{}..{}:{}:{}",
            self.hash,
            self.kind.name(),
            self.k_from,
            self.k_to,
            self.max_states,
            symmetry,
        );
        if self.kind == JobKind::Synthesize {
            key.push_str(&format!(
                ":s{}:c{}:r{}:{}",
                self.max_solutions,
                self.max_combinations,
                self.max_resolve_sets,
                if self.prune { "pruned" } else { "full" },
            ));
        }
        key
    }

    /// The job's deadline instant, if a timeout was requested. Anchored
    /// at submit time, not dequeue time: queue wait counts against the
    /// budget, matching what the client observes.
    pub fn deadline_from(&self, submitted: Instant) -> Option<Instant> {
        self.timeout.map(|t| submitted + t)
    }
}

/// Where a job currently is.
pub enum JobState {
    /// Accepted, waiting for a pool worker.
    Queued,
    /// Executing.
    Running,
    /// Completed; `doc` is the canonical result document.
    Done { doc: Arc<CachedDoc> },
    /// Deadline fired mid-run; `partial` holds the rows completed before
    /// the cut (never cached).
    TimedOut { partial: String },
    /// Cancelled by server drain before completing.
    Drained,
    /// Could not run or panicked; `status` is the HTTP mapping.
    Failed { status: u16, message: String },
}

impl JobState {
    /// The status label shown by `GET /v1/jobs/:id`.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::TimedOut { .. } => "timed_out",
            JobState::Drained => "drained",
            JobState::Failed { .. } => "failed",
        }
    }
}

/// One tracked job: identity, current state, and its telemetry
/// accumulator. Shared between the HTTP handlers and the pool closure.
pub struct JobEntry {
    /// The job id (`/v1/jobs/:id`).
    pub id: u64,
    /// What it computes.
    pub kind: JobKind,
    /// The request's content address.
    pub cache_key: String,
    /// Current state.
    pub state: Mutex<JobState>,
    /// Phase breakdown + engine counters, filled during execution.
    pub telemetry: JobTelemetry,
    /// `true` iff the submit was answered from cache (no pool work).
    pub cached: bool,
    /// The originating request's span collection. `None` for jobs
    /// restored from a journal replay — their request predates this
    /// boot, so there is no request to trace.
    pub trace: Option<Arc<JobTrace>>,
}

impl JobEntry {
    /// The `GET /v1/jobs/:id` status document.
    pub fn status_json(&self) -> Value {
        let state = self.state.lock().expect("job state poisoned");
        let mut doc = json!({
            "id": self.id,
            "kind": self.kind.name(),
            "status": state.label(),
            "cached": self.cached,
            "cache_key": self.cache_key.clone(),
            "attempts": self.telemetry.attempts.load(std::sync::atomic::Ordering::Relaxed),
            "phases_us": self.telemetry.phases.snapshot().to_json(),
        });
        if let (Some(trace), Value::Object(map)) = (&self.trace, &mut doc) {
            map.insert(
                "trace_id".to_owned(),
                Value::String(trace.trace_id().to_owned()),
            );
        }
        if let JobState::Failed { message, .. } = &*state {
            if let Value::Object(map) = &mut doc {
                map.insert("error".to_owned(), Value::String(message.clone()));
            }
        }
        doc
    }
}

/// How an execution ended.
pub enum ExecOutcome {
    /// Completed: the canonical document, cacheable.
    Done(CachedDoc),
    /// The cancel token fired mid-run (deadline or drain); `partial`
    /// holds the completed rows.
    Cancelled { partial: String },
    /// The job could not run.
    Failed { status: u16, message: String },
}

/// Runs a validated request to completion (or cancellation), timing each
/// phase into `telemetry` (and, when the job is traced, recording one
/// engine span per phase per K into `trace`). This is the exact CLI
/// pipeline: the returned `Done` document is byte-identical to
/// `selfstab check --json` / `selfstab synthesize --json` on the same
/// inputs.
pub fn execute(
    req: &JobRequest,
    telemetry: &JobTelemetry,
    cancel: &CancelToken,
    trace: Option<&JobTrace>,
) -> ExecOutcome {
    match req.kind {
        JobKind::Verify | JobKind::Sweep => execute_check(req, telemetry, cancel, trace),
        JobKind::Synthesize => execute_synthesis(req, telemetry, cancel, trace),
    }
}

/// Times `f` as `phase` in the job's phase accumulator and, when traced,
/// as an engine span carrying `args`.
fn timed_phase<T>(
    telemetry: &JobTelemetry,
    trace: Option<&JobTrace>,
    phase: Phase,
    args: Value,
    f: impl FnOnce() -> T,
) -> T {
    match trace {
        Some(trace) => trace.time(phase.name(), "engine", args, || {
            telemetry.phases.time(phase, f)
        }),
        None => telemetry.phases.time(phase, f),
    }
}

fn execute_check(
    req: &JobRequest,
    telemetry: &JobTelemetry,
    cancel: &CancelToken,
    trace: Option<&JobTrace>,
) -> ExecOutcome {
    let engine = EngineConfig::with_threads(req.threads).with_symmetry(req.symmetry);
    let counters = EngineCounters::new();
    let mut rows = Vec::new();
    let mut all_ok = true;
    for k in req.k_from..=req.k_to {
        let ring = match RingInstance::symmetric_with_limit(&req.protocol, k, req.max_states) {
            Ok(ring) => ring,
            Err(e) => {
                return ExecOutcome::Failed {
                    status: 422,
                    message: format!("cannot instantiate K={k}: {e}"),
                }
            }
        };
        let scan = match timed_phase(telemetry, trace, Phase::FusedScan, json!({"k": k}), || {
            fused_scan_metered(&ring, &engine, cancel, Some(&counters))
        })
        .ok()
        {
            Some(scan) => scan,
            None => return cancelled_check(rows, &counters, telemetry),
        };
        let livelock = match timed_phase(
            telemetry,
            trace,
            Phase::LivelockDfs,
            json!({"k": k}),
            || find_livelock_metered(&ring, &scan, cancel, Some(&counters)),
        )
        .ok()
        {
            Some(livelock) => livelock,
            None => return cancelled_check(rows, &counters, telemetry),
        };
        let report = ConvergenceReport {
            ring_size: ring.ring_size(),
            state_count: ring.space().len(),
            legit_count: scan.legit_count,
            closure_violation: scan.first_closure_violation,
            illegitimate_deadlocks: scan.illegitimate_deadlocks,
            livelock,
        };
        if !report.self_stabilizing() {
            all_ok = false;
        }
        rows.push(render::convergence_report(&report));
    }
    telemetry.set_counters(counters.snapshot());
    ExecOutcome::Done(CachedDoc {
        body: render::check_document(rows),
        exit_code: if all_ok { 0 } else { 2 },
    })
}

fn cancelled_check(
    rows: Vec<Value>,
    counters: &EngineCounters,
    telemetry: &JobTelemetry,
) -> ExecOutcome {
    telemetry.set_counters(counters.snapshot());
    ExecOutcome::Cancelled {
        partial: format!("{}\n", json!({ "partial": true, "rows": rows })),
    }
}

fn execute_synthesis(
    req: &JobRequest,
    telemetry: &JobTelemetry,
    cancel: &CancelToken,
    trace: Option<&JobTrace>,
) -> ExecOutcome {
    // Mirrors `selfstab synthesize --json`, with the request's own
    // budgets and prune mode instead of hardcoded defaults.
    let config = SynthesisConfig {
        max_solutions: req.max_solutions,
        max_combinations: req.max_combinations,
        max_resolve_sets: req.max_resolve_sets,
        threads: req.threads,
        prune: req.prune,
        ..SynthesisConfig::default()
    };
    let counters = SynthesisCounters::new();
    // The synthesizer attributes `Phase::Synthesis` internally; the
    // trace span wraps the whole run so the engine work still shows on
    // the job's lane.
    let run = || {
        LocalSynthesizer::new(config).synthesize_metered(
            &req.protocol,
            cancel,
            Some(&counters),
            Some(&telemetry.phases),
        )
    };
    let result = match trace {
        Some(t) => t.time(Phase::Synthesis.name(), "engine", Value::Null, run),
        None => run(),
    };
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(e) => {
            return ExecOutcome::Failed {
                status: 422,
                message: format!("synthesis cannot run: {e}"),
            }
        }
    };
    let value = render::synthesis_outcome(&req.protocol, &outcome, &counters.snapshot());
    if outcome.cancelled() {
        return ExecOutcome::Cancelled {
            partial: format!("{}\n", json!({ "partial": true, "outcome": value })),
        };
    }
    ExecOutcome::Done(CachedDoc {
        body: render::synthesis_document(&value),
        exit_code: if outcome.is_success() { 0 } else { 2 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const AGREEMENT: &str = "\
protocol agreement
domain x { 0 1 }
locality unidirectional
legit x[r] == x[r-1]
action x[r-1] == 1 && x[r] == 0 -> x[r] := 1
";

    fn body(json_text: &str) -> Value {
        serde_json::from_str(json_text).unwrap()
    }

    fn spec_body(extra: &str) -> Value {
        let spec = serde_json::Value::String(AGREEMENT.to_owned());
        body(&format!("{{\"spec\": {spec}, {extra}}}"))
    }

    #[test]
    fn verify_request_parses_and_keys() {
        let req = JobRequest::from_json(&spec_body("\"kind\": \"verify\", \"k\": 4")).unwrap();
        assert_eq!(req.kind, JobKind::Verify);
        assert_eq!((req.k_from, req.k_to), (4, 4));
        assert_eq!(req.threads, 1);
        let key = req.cache_key();
        assert!(key.contains(":verify:4..4:"), "key was {key}");
        assert!(key.ends_with(":auto"));
        assert!(key.starts_with(&req.hash.to_string()));
    }

    #[test]
    fn sweep_defaults_and_range_validation() {
        let req =
            JobRequest::from_json(&spec_body("\"kind\": \"sweep\", \"k\": 3, \"to\": 5")).unwrap();
        assert_eq!((req.k_from, req.k_to), (3, 5));
        let err = JobRequest::from_json(&spec_body("\"kind\": \"sweep\", \"k\": 5, \"to\": 3"))
            .unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn structural_errors_are_400() {
        for extra in [
            "\"kind\": \"explode\", \"k\": 3",
            "\"kind\": \"verify\"",
            "\"kind\": \"verify\", \"k\": \"three\"",
            "\"kind\": \"verify\", \"k\": 3, \"to\": 5",
            "\"kind\": \"verify\", \"k\": 1",
            "\"kind\": \"synthesize\", \"k\": 3",
            "\"kind\": \"verify\", \"k\": 3, \"symmetry\": \"sideways\"",
        ] {
            let err = JobRequest::from_json(&spec_body(extra)).unwrap_err();
            assert_eq!(err.status(), 400, "case: {extra}");
        }
        let err = JobRequest::from_json(&body("{\"kind\": \"verify\", \"k\": 3}")).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn bad_specs_and_blowups_are_422() {
        let err = JobRequest::from_json(&body(
            "{\"kind\": \"verify\", \"k\": 3, \"spec\": \"not a protocol\"}",
        ))
        .unwrap_err();
        assert_eq!(err.status(), 422);
        // 2^40 states blows the default budget at submit, not at run time.
        let err = JobRequest::from_json(&spec_body("\"kind\": \"verify\", \"k\": 40")).unwrap_err();
        assert_eq!(err.status(), 422);
        assert!(err.message().contains("over budget"));
    }

    #[test]
    fn cache_key_is_spec_content_addressed() {
        let spec_b = AGREEMENT
            .replace("action", "  action")
            .replace("protocol agreement", "# a comment\nprotocol agreement");
        let a = JobRequest::from_json(&spec_body("\"kind\": \"verify\", \"k\": 4")).unwrap();
        let b = JobRequest::from_json(&body(&format!(
            "{{\"kind\": \"verify\", \"k\": 4, \"spec\": {}}}",
            serde_json::Value::String(spec_b)
        )))
        .unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        // Different K → different address.
        let c = JobRequest::from_json(&spec_body("\"kind\": \"verify\", \"k\": 5")).unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn synthesis_knobs_parse_and_never_alias_in_the_cache() {
        // Defaults mirror SynthesisConfig::default().
        let base = JobRequest::from_json(&spec_body("\"kind\": \"synthesize\"")).unwrap();
        assert_eq!(base.max_solutions, 64);
        assert_eq!(base.max_combinations, 4096);
        assert_eq!(base.max_resolve_sets, 32);
        assert!(base.prune);

        // Regression: every synthesis knob must perturb the cache key —
        // before they were keyed, a `max_combinations: 1` request was
        // answered with the full-budget document.
        let variants = [
            "\"kind\": \"synthesize\", \"max_solutions\": 1",
            "\"kind\": \"synthesize\", \"max_combinations\": 1",
            "\"kind\": \"synthesize\", \"max_resolve_sets\": 1",
            "\"kind\": \"synthesize\", \"prune\": false",
        ];
        let mut keys = vec![base.cache_key()];
        for extra in variants {
            let req = JobRequest::from_json(&spec_body(extra)).unwrap();
            keys.push(req.cache_key());
        }
        let unique: std::collections::BTreeSet<&String> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "aliased keys: {keys:?}");

        // An explicit default is the same address as an omitted knob.
        let explicit =
            JobRequest::from_json(&spec_body("\"kind\": \"synthesize\", \"prune\": true")).unwrap();
        assert_eq!(explicit.cache_key(), base.cache_key());
    }

    #[test]
    fn synthesis_knobs_are_rejected_on_other_kinds() {
        for extra in [
            "\"kind\": \"verify\", \"k\": 3, \"prune\": true",
            "\"kind\": \"sweep\", \"k\": 3, \"max_solutions\": 2",
            "\"kind\": \"verify\", \"k\": 3, \"max_combinations\": 10",
            "\"kind\": \"synthesize\", \"prune\": \"on\"",
            "\"kind\": \"synthesize\", \"max_solutions\": 0",
        ] {
            let err = JobRequest::from_json(&spec_body(extra)).unwrap_err();
            assert_eq!(err.status(), 400, "case: {extra}");
        }
    }

    #[test]
    fn execute_verify_matches_cli_render() {
        let req = JobRequest::from_json(&spec_body("\"kind\": \"verify\", \"k\": 4")).unwrap();
        let telemetry = JobTelemetry::default();
        let outcome = execute(&req, &telemetry, &CancelToken::new(), None);
        let ExecOutcome::Done(doc) = outcome else {
            panic!("expected completion");
        };
        assert_eq!(doc.exit_code, 0);
        // Byte-identity with the CLI path: same row builder, same framing.
        let ring = RingInstance::symmetric(&req.protocol, 4).unwrap();
        let report = ConvergenceReport::check(&ring);
        let expected = render::check_document(vec![render::convergence_report(&report)]);
        assert_eq!(doc.body, expected);
        // Phases were attributed.
        let phases = telemetry.phases.snapshot();
        assert!(phases.calls[Phase::FusedScan.index()] > 0);
        assert!(phases.calls[Phase::LivelockDfs.index()] > 0);
        assert!(telemetry.counters().is_some());
    }

    #[test]
    fn execute_respects_a_pre_fired_token() {
        let req =
            JobRequest::from_json(&spec_body("\"kind\": \"sweep\", \"k\": 3, \"to\": 8")).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let outcome = execute(&req, &JobTelemetry::default(), &token, None);
        let ExecOutcome::Cancelled { partial } = outcome else {
            panic!("expected cancellation");
        };
        let doc: Value = serde_json::from_str(&partial).unwrap();
        assert_eq!(doc["partial"], true);
        assert_eq!(doc["rows"].as_array().unwrap().len(), 0);
    }
}

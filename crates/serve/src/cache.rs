//! The content-addressed result cache with single-flight deduplication.
//!
//! Real verification traffic is repetitive: iterating the same specs
//! across K ranges and candidate sets re-submits near-identical requests
//! over and over. Every completed result document is a pure function of
//! `(spec semantics, kind, K range, state budget, symmetry mode)`, so the
//! service memoizes the **rendered bytes** under exactly that key (see
//! [`crate::jobs::JobRequest::cache_key`], built on
//! [`selfstab_core::spec_hash`]). A repeat request is then served straight
//! from memory — no parse, no analysis, no pool job.
//!
//! Two request-shape subtleties:
//!
//! * **Single flight.** N clients racing the same cold key must cost one
//!   pool job, not N. The first submit atomically reserves the key as
//!   in-flight and carries the job id; every racer is *coalesced* onto
//!   that id and polls the same job. Only completion (or abandonment —
//!   timeout, panic, drain) resolves the reservation.
//! * **Byte budget.** Result documents are small but unbounded in number;
//!   an LRU byte budget caps the memory. Eviction walks off the least
//!   recently *hit* completed entries; in-flight reservations hold no
//!   bytes and are never evicted.
//!
//! Only *completed* documents are cached. A cancelled or timed-out job
//! produced partial bytes that depend on where the deadline landed —
//! caching those would serve nondeterministic documents, so the
//! reservation is abandoned instead and the next request retries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use selfstab_telemetry::Registry;
use serde_json::{json, Value};

/// A completed, cacheable result: the exact response bytes plus the CLI
/// exit code the document maps to (0 verified / 2 violation found).
#[derive(Debug)]
pub struct CachedDoc {
    /// The canonical rendered document — byte-identical to the
    /// corresponding CLI `--json` output.
    pub body: String,
    /// The CLI exit-code equivalent, echoed as `X-Selfstab-Exit-Code`.
    pub exit_code: u8,
}

/// What a submit found under its cache key.
#[derive(Debug)]
pub enum Lookup {
    /// A completed document: serve it, enqueue nothing.
    Hit(Arc<CachedDoc>),
    /// Another request is already computing this key; the id is that
    /// request's job. Coalesce onto it, enqueue nothing.
    InFlight(u64),
    /// Nothing cached; the key is now reserved for the caller's job id.
    Miss,
}

enum Entry {
    Done {
        doc: Arc<CachedDoc>,
        bytes: usize,
        last_used: u64,
    },
    InFlight {
        job: u64,
    },
}

struct CacheInner {
    entries: HashMap<String, Entry>,
    /// Total bytes held by `Done` entries.
    bytes: usize,
    /// Monotone recency clock (bumped per touch).
    tick: u64,
}

/// The cache. All operations take one short mutex; the documents
/// themselves are shared out as `Arc`s, so a hit never copies the body.
pub struct ResultCache {
    budget: usize,
    inner: Mutex<CacheInner>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    coalesced: Arc<AtomicU64>,
    insertions: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
}

impl ResultCache {
    /// A cache bounded to `budget` bytes of completed documents, its
    /// counters registered in `registry` under `cache/…`.
    pub fn new(budget: usize, registry: &Registry) -> Self {
        ResultCache {
            budget,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            hits: registry.counter("cache/hits"),
            misses: registry.counter("cache/misses"),
            coalesced: registry.counter("cache/coalesced"),
            insertions: registry.counter("cache/insertions"),
            evictions: registry.counter("cache/evictions"),
        }
    }

    /// Looks up `key`; on a miss, atomically reserves the key for
    /// `job_id` so concurrent identical submits coalesce instead of
    /// duplicating work.
    pub fn lookup_or_reserve(&self, key: &str, job_id: u64) -> Lookup {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(Entry::Done { doc, last_used, .. }) => {
                *last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Arc::clone(doc))
            }
            Some(Entry::InFlight { job }) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Lookup::InFlight(*job)
            }
            None => {
                inner
                    .entries
                    .insert(key.to_owned(), Entry::InFlight { job: job_id });
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Resolves an in-flight reservation with its completed document and
    /// enforces the byte budget (evicting least-recently-used completed
    /// entries; a document larger than the whole budget is simply not
    /// retained).
    pub fn fulfill(&self, key: &str, doc: Arc<CachedDoc>) {
        let bytes = doc.body.len();
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if bytes > self.budget {
            inner.entries.remove(key);
            return;
        }
        if let Some(Entry::Done { bytes, .. }) = inner.entries.insert(
            key.to_owned(),
            Entry::Done {
                doc,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= bytes;
        }
        inner.bytes += bytes;
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while inner.bytes > self.budget {
            let victim = inner
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Done { last_used, .. } if k != key => Some((*last_used, k.clone())),
                    _ => None,
                })
                .min();
            let Some((_, victim)) = victim else {
                break; // nothing evictable but the fresh entry itself
            };
            if let Some(Entry::Done { bytes, .. }) = inner.entries.remove(&victim) {
                inner.bytes -= bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops an in-flight reservation whose job did not complete
    /// (timeout, panic, drain): the next identical request starts fresh.
    pub fn abandon(&self, key: &str) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if matches!(inner.entries.get(key), Some(Entry::InFlight { .. })) {
            inner.entries.remove(key);
        }
    }

    /// The `/v1/cache/stats` document.
    pub fn stats_json(&self) -> Value {
        let inner = self.inner.lock().expect("cache poisoned");
        let completed = inner
            .entries
            .values()
            .filter(|e| matches!(e, Entry::Done { .. }))
            .count();
        let in_flight = inner.entries.len() - completed;
        json!({
            "budget_bytes": self.budget,
            "bytes": inner.bytes,
            "entries": completed,
            "in_flight": in_flight,
            "hits": self.hits.load(Ordering::Relaxed),
            "misses": self.misses.load(Ordering::Relaxed),
            "coalesced": self.coalesced.load(Ordering::Relaxed),
            "insertions": self.insertions.load(Ordering::Relaxed),
            "evictions": self.evictions.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(body: &str) -> Arc<CachedDoc> {
        Arc::new(CachedDoc {
            body: body.to_owned(),
            exit_code: 0,
        })
    }

    fn cache(budget: usize) -> ResultCache {
        ResultCache::new(budget, &Registry::new())
    }

    #[test]
    fn miss_reserves_then_hit_serves() {
        let c = cache(1024);
        assert!(matches!(c.lookup_or_reserve("k", 1), Lookup::Miss));
        // A racer coalesces onto job 1.
        match c.lookup_or_reserve("k", 2) {
            Lookup::InFlight(job) => assert_eq!(job, 1),
            other => panic!("expected coalesce, got {other:?}"),
        }
        c.fulfill("k", doc("result"));
        match c.lookup_or_reserve("k", 3) {
            Lookup::Hit(d) => assert_eq!(d.body, "result"),
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = c.stats_json();
        assert_eq!(stats["hits"], 1u64);
        assert_eq!(stats["misses"], 1u64);
        assert_eq!(stats["coalesced"], 1u64);
        assert_eq!(stats["bytes"], 6u64);
    }

    #[test]
    fn abandon_reopens_the_key() {
        let c = cache(1024);
        assert!(matches!(c.lookup_or_reserve("k", 1), Lookup::Miss));
        c.abandon("k");
        assert!(matches!(c.lookup_or_reserve("k", 2), Lookup::Miss));
        // Abandon never drops a completed document.
        c.fulfill("k", doc("done"));
        c.abandon("k");
        assert!(matches!(c.lookup_or_reserve("k", 3), Lookup::Hit(_)));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let c = cache(10);
        for (key, body) in [("a", "aaaa"), ("b", "bbbb")] {
            assert!(matches!(c.lookup_or_reserve(key, 0), Lookup::Miss));
            c.fulfill(key, doc(body));
        }
        // Touch `a` so `b` is the LRU victim.
        assert!(matches!(c.lookup_or_reserve("a", 0), Lookup::Hit(_)));
        assert!(matches!(c.lookup_or_reserve("c", 0), Lookup::Miss));
        c.fulfill("c", doc("cccc"));
        assert!(matches!(c.lookup_or_reserve("a", 0), Lookup::Hit(_)));
        assert!(matches!(c.lookup_or_reserve("c", 0), Lookup::Hit(_)));
        assert!(
            matches!(c.lookup_or_reserve("b", 9), Lookup::Miss),
            "b was evicted"
        );
        let stats = c.stats_json();
        assert_eq!(stats["evictions"], 1u64);
        assert!(stats["bytes"].as_u64().unwrap() <= 10);
    }

    #[test]
    fn documents_over_the_whole_budget_are_not_retained() {
        let c = cache(4);
        assert!(matches!(c.lookup_or_reserve("big", 0), Lookup::Miss));
        c.fulfill("big", doc("way too large"));
        assert!(matches!(c.lookup_or_reserve("big", 1), Lookup::Miss));
        assert_eq!(c.stats_json()["bytes"], 0u64);
    }
}

//! The content-addressed result cache with single-flight deduplication.
//!
//! Real verification traffic is repetitive: iterating the same specs
//! across K ranges and candidate sets re-submits near-identical requests
//! over and over. Every completed result document is a pure function of
//! `(spec semantics, kind, K range, state budget, symmetry mode)`, so the
//! service memoizes the **rendered bytes** under exactly that key (see
//! [`crate::jobs::JobRequest::cache_key`], built on
//! [`selfstab_core::spec_hash`]). A repeat request is then served straight
//! from memory — no parse, no analysis, no pool job.
//!
//! Two request-shape subtleties:
//!
//! * **Single flight.** N clients racing the same cold key must cost one
//!   pool job, not N. The first submit atomically reserves the key as
//!   in-flight and carries the job id; every racer is *coalesced* onto
//!   that id and polls the same job. Only completion (or abandonment —
//!   timeout, panic, drain) resolves the reservation.
//! * **Byte budget.** Result documents are small but unbounded in number;
//!   an LRU byte budget caps the memory. Eviction walks off the least
//!   recently *hit* completed entries; in-flight reservations hold no
//!   bytes and are never evicted.
//!
//! Only *completed* documents are cached. A cancelled or timed-out job
//! produced partial bytes that depend on where the deadline landed —
//! caching those would serve nondeterministic documents, so the
//! reservation is abandoned instead and the next request retries.
//!
//! **Warm restarts.** With a snapshot path configured, every completed
//! document is also written through to an append-only, CRC-framed
//! snapshot file (`{"key","exit_code","body"}` records under the
//! campaign journal's `len crc payload\n` framing). At boot the snapshot
//! is replayed — longest valid prefix, later records win — through the
//! ordinary insert path, so the restored set respects the LRU byte
//! budget, and the file is compacted to exactly the surviving entries. A
//! restarted server therefore answers repeat traffic from cache
//! immediately instead of re-verifying its whole working set.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use selfstab_campaign::journal::replay_frames;
use selfstab_telemetry::Registry;
use serde_json::{json, Value};

/// A completed, cacheable result: the exact response bytes plus the CLI
/// exit code the document maps to (0 verified / 2 violation found).
#[derive(Debug, PartialEq, Eq)]
pub struct CachedDoc {
    /// The canonical rendered document — byte-identical to the
    /// corresponding CLI `--json` output.
    pub body: String,
    /// The CLI exit-code equivalent, echoed as `X-Selfstab-Exit-Code`.
    pub exit_code: u8,
}

/// What a submit found under its cache key.
#[derive(Debug)]
pub enum Lookup {
    /// A completed document: serve it, enqueue nothing.
    Hit(Arc<CachedDoc>),
    /// Another request is already computing this key; the id is that
    /// request's job. Coalesce onto it, enqueue nothing.
    InFlight(u64),
    /// Nothing cached; the key is now reserved for the caller's job id.
    Miss,
}

enum Entry {
    Done {
        doc: Arc<CachedDoc>,
        bytes: usize,
        last_used: u64,
    },
    InFlight {
        job: u64,
    },
}

struct CacheInner {
    entries: HashMap<String, Entry>,
    /// Total bytes held by `Done` entries.
    bytes: usize,
    /// Monotone recency clock (bumped per touch).
    tick: u64,
    /// The write-through snapshot appender, if snapshotting is on.
    snapshot: Option<selfstab_campaign::Journal>,
}

/// The cache. All operations take one short mutex; the documents
/// themselves are shared out as `Arc`s, so a hit never copies the body.
pub struct ResultCache {
    budget: usize,
    inner: Mutex<CacheInner>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    coalesced: Arc<AtomicU64>,
    insertions: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
    snapshot_restored: Arc<AtomicU64>,
}

impl ResultCache {
    /// A cache bounded to `budget` bytes of completed documents, its
    /// counters registered in `registry` under `cache/…`.
    pub fn new(budget: usize, registry: &Registry) -> Self {
        ResultCache {
            budget,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                bytes: 0,
                tick: 0,
                snapshot: None,
            }),
            hits: registry.counter("cache/hits"),
            misses: registry.counter("cache/misses"),
            coalesced: registry.counter("cache/coalesced"),
            insertions: registry.counter("cache/insertions"),
            evictions: registry.counter("cache/evictions"),
            snapshot_restored: registry.counter("cache/snapshot_restored"),
        }
    }

    /// A cache backed by a write-through snapshot at `path`: existing
    /// records are replayed (longest valid prefix; later records win)
    /// under the byte budget, the file is compacted to the surviving
    /// entries, and every future [`ResultCache::fulfill`] appends a
    /// CRC-framed record.
    ///
    /// # Errors
    ///
    /// Returns the rendered IO failure if the snapshot file exists but
    /// cannot be read, or cannot be rewritten.
    pub fn with_snapshot(
        budget: usize,
        registry: &Registry,
        path: &Path,
        fsync: selfstab_campaign::FsyncPolicy,
    ) -> Result<Self, String> {
        let cache = ResultCache::new(budget, registry);
        let frames = replay_frames(path).map_err(|e| e.to_string())?;
        for ev in frames.events {
            let (Some(key), Some(body), Some(code)) = (
                ev["key"].as_str(),
                ev["body"].as_str(),
                ev["exit_code"].as_u64(),
            ) else {
                continue;
            };
            cache.insert_restored(
                key,
                Arc::new(CachedDoc {
                    body: body.to_owned(),
                    exit_code: code as u8,
                }),
            );
            cache.snapshot_restored.fetch_add(1, Ordering::Relaxed);
        }
        // Compact: rewrite the file to exactly the entries that survived
        // the budget, so the snapshot cannot grow without bound across
        // restarts, then keep it open for write-through appends.
        let journal = selfstab_campaign::Journal::create(path, fsync).map_err(|e| e.to_string())?;
        {
            let inner = cache.inner.lock().expect("cache poisoned");
            let mut live: Vec<(&String, &Arc<CachedDoc>, u64)> = inner
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Done { doc, last_used, .. } => Some((k, doc, *last_used)),
                    Entry::InFlight { .. } => None,
                })
                .collect();
            // Oldest first, so a future replay's later-wins order equals
            // today's recency order.
            live.sort_by_key(|(_, _, last_used)| *last_used);
            for (key, doc, _) in live {
                journal.event(&snapshot_record(key, doc));
            }
            journal.sync();
        }
        cache
            .inner
            .lock()
            .expect("cache poisoned")
            .snapshot
            .replace(journal);
        Ok(cache)
    }

    /// Inserts a restored document without touching the snapshot file —
    /// the boot path for snapshot replay and journal-replayed results.
    /// Budget enforcement is identical to [`ResultCache::fulfill`].
    pub fn insert_restored(&self, key: &str, doc: Arc<CachedDoc>) {
        self.insert(key, doc, false);
    }

    /// Looks up `key`; on a miss, atomically reserves the key for
    /// `job_id` so concurrent identical submits coalesce instead of
    /// duplicating work.
    pub fn lookup_or_reserve(&self, key: &str, job_id: u64) -> Lookup {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(Entry::Done { doc, last_used, .. }) => {
                *last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Arc::clone(doc))
            }
            Some(Entry::InFlight { job }) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Lookup::InFlight(*job)
            }
            None => {
                inner
                    .entries
                    .insert(key.to_owned(), Entry::InFlight { job: job_id });
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Resolves an in-flight reservation with its completed document and
    /// enforces the byte budget (evicting least-recently-used completed
    /// entries; a document larger than the whole budget is simply not
    /// retained). With a snapshot configured, the document is also written
    /// through as a CRC-framed record.
    pub fn fulfill(&self, key: &str, doc: Arc<CachedDoc>) {
        self.insert(key, doc, true);
    }

    /// The shared insert path behind [`ResultCache::fulfill`] (which
    /// writes through to the snapshot) and
    /// [`ResultCache::insert_restored`] (which must not, or boot replay
    /// would double every record).
    fn insert(&self, key: &str, doc: Arc<CachedDoc>, write_through: bool) {
        let bytes = doc.body.len();
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if bytes > self.budget {
            // Too large to ever retain: clear the reservation (and any
            // stale completed entry), giving its bytes back so `bytes`
            // tracks live entries rather than a high-water mark.
            if let Some(Entry::Done { bytes, .. }) = inner.entries.remove(key) {
                inner.bytes -= bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        if write_through {
            if let Some(snapshot) = &inner.snapshot {
                snapshot.event(&snapshot_record(key, &doc));
            }
        }
        if let Some(Entry::Done { bytes, .. }) = inner.entries.insert(
            key.to_owned(),
            Entry::Done {
                doc,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= bytes;
        }
        inner.bytes += bytes;
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while inner.bytes > self.budget {
            let victim = inner
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Done { last_used, .. } if k != key => Some((*last_used, k.clone())),
                    _ => None,
                })
                .min();
            let Some((_, victim)) = victim else {
                break; // nothing evictable but the fresh entry itself
            };
            if let Some(Entry::Done { bytes, .. }) = inner.entries.remove(&victim) {
                inner.bytes -= bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops an in-flight reservation whose job did not complete
    /// (timeout, panic, drain): the next identical request starts fresh.
    pub fn abandon(&self, key: &str) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if matches!(inner.entries.get(key), Some(Entry::InFlight { .. })) {
            inner.entries.remove(key);
        }
    }

    /// Current resident bytes — the `cache/bytes` gauge at metrics
    /// scrape time.
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("cache poisoned").bytes
    }

    /// The `/v1/cache/stats` document.
    pub fn stats_json(&self) -> Value {
        let inner = self.inner.lock().expect("cache poisoned");
        let completed = inner
            .entries
            .values()
            .filter(|e| matches!(e, Entry::Done { .. }))
            .count();
        let in_flight = inner.entries.len() - completed;
        json!({
            "budget_bytes": self.budget,
            "bytes": inner.bytes,
            "entries": completed,
            "in_flight": in_flight,
            "hits": self.hits.load(Ordering::Relaxed),
            "misses": self.misses.load(Ordering::Relaxed),
            "coalesced": self.coalesced.load(Ordering::Relaxed),
            "insertions": self.insertions.load(Ordering::Relaxed),
            "evictions": self.evictions.load(Ordering::Relaxed),
            "snapshot_restored": self.snapshot_restored.load(Ordering::Relaxed),
        })
    }
}

/// One snapshot record: everything [`ResultCache::with_snapshot`] needs to
/// rebuild the entry at the next boot.
fn snapshot_record(key: &str, doc: &CachedDoc) -> Value {
    json!({"key": key, "exit_code": doc.exit_code, "body": doc.body.clone()})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(body: &str) -> Arc<CachedDoc> {
        Arc::new(CachedDoc {
            body: body.to_owned(),
            exit_code: 0,
        })
    }

    fn cache(budget: usize) -> ResultCache {
        ResultCache::new(budget, &Registry::new())
    }

    #[test]
    fn miss_reserves_then_hit_serves() {
        let c = cache(1024);
        assert!(matches!(c.lookup_or_reserve("k", 1), Lookup::Miss));
        // A racer coalesces onto job 1.
        match c.lookup_or_reserve("k", 2) {
            Lookup::InFlight(job) => assert_eq!(job, 1),
            other => panic!("expected coalesce, got {other:?}"),
        }
        c.fulfill("k", doc("result"));
        match c.lookup_or_reserve("k", 3) {
            Lookup::Hit(d) => assert_eq!(d.body, "result"),
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = c.stats_json();
        assert_eq!(stats["hits"], 1u64);
        assert_eq!(stats["misses"], 1u64);
        assert_eq!(stats["coalesced"], 1u64);
        assert_eq!(stats["bytes"], 6u64);
    }

    #[test]
    fn abandon_reopens_the_key() {
        let c = cache(1024);
        assert!(matches!(c.lookup_or_reserve("k", 1), Lookup::Miss));
        c.abandon("k");
        assert!(matches!(c.lookup_or_reserve("k", 2), Lookup::Miss));
        // Abandon never drops a completed document.
        c.fulfill("k", doc("done"));
        c.abandon("k");
        assert!(matches!(c.lookup_or_reserve("k", 3), Lookup::Hit(_)));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let c = cache(10);
        for (key, body) in [("a", "aaaa"), ("b", "bbbb")] {
            assert!(matches!(c.lookup_or_reserve(key, 0), Lookup::Miss));
            c.fulfill(key, doc(body));
        }
        // Touch `a` so `b` is the LRU victim.
        assert!(matches!(c.lookup_or_reserve("a", 0), Lookup::Hit(_)));
        assert!(matches!(c.lookup_or_reserve("c", 0), Lookup::Miss));
        c.fulfill("c", doc("cccc"));
        assert!(matches!(c.lookup_or_reserve("a", 0), Lookup::Hit(_)));
        assert!(matches!(c.lookup_or_reserve("c", 0), Lookup::Hit(_)));
        assert!(
            matches!(c.lookup_or_reserve("b", 9), Lookup::Miss),
            "b was evicted"
        );
        let stats = c.stats_json();
        assert_eq!(stats["evictions"], 1u64);
        assert!(stats["bytes"].as_u64().unwrap() <= 10);
    }

    #[test]
    fn documents_over_the_whole_budget_are_not_retained() {
        let c = cache(4);
        assert!(matches!(c.lookup_or_reserve("big", 0), Lookup::Miss));
        c.fulfill("big", doc("way too large"));
        assert!(matches!(c.lookup_or_reserve("big", 1), Lookup::Miss));
        assert_eq!(c.stats_json()["bytes"], 0u64);
    }

    #[test]
    fn oversized_replacement_releases_the_old_entrys_bytes() {
        // Regression: replacing a completed entry with a document too big
        // to retain must give the old bytes back — `bytes` reports live
        // entries, not a high-water mark.
        let c = cache(8);
        assert!(matches!(c.lookup_or_reserve("k", 0), Lookup::Miss));
        c.fulfill("k", doc("eight!!!"));
        assert_eq!(c.stats_json()["bytes"], 8u64);
        c.fulfill("k", doc("far more than the whole budget"));
        assert!(matches!(c.lookup_or_reserve("k", 1), Lookup::Miss));
        assert_eq!(c.stats_json()["bytes"], 0u64);
        assert_eq!(c.stats_json()["evictions"], 1u64);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("selfstab-cache-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn snapshot_roundtrips_across_restart() {
        let path = tmp("roundtrip.snap");
        let _ = std::fs::remove_file(&path);
        {
            let c = ResultCache::with_snapshot(
                1024,
                &Registry::new(),
                &path,
                selfstab_campaign::FsyncPolicy::Always,
            )
            .unwrap();
            assert!(matches!(c.lookup_or_reserve("a", 0), Lookup::Miss));
            c.fulfill("a", doc("alpha"));
            assert!(matches!(c.lookup_or_reserve("b", 1), Lookup::Miss));
            c.fulfill("b", doc("beta"));
        }
        let reg = Registry::new();
        let c =
            ResultCache::with_snapshot(1024, &reg, &path, selfstab_campaign::FsyncPolicy::Always)
                .unwrap();
        match c.lookup_or_reserve("a", 0) {
            Lookup::Hit(d) => assert_eq!(d.body, "alpha"),
            other => panic!("expected restored hit, got {other:?}"),
        }
        assert!(matches!(c.lookup_or_reserve("b", 0), Lookup::Hit(_)));
        let stats = c.stats_json();
        assert_eq!(stats["snapshot_restored"], 2u64);
        assert_eq!(stats["bytes"], 9u64);
    }

    #[test]
    fn snapshot_replay_respects_the_budget_and_compacts() {
        let path = tmp("compaction.snap");
        let _ = std::fs::remove_file(&path);
        {
            let c = ResultCache::with_snapshot(
                1024,
                &Registry::new(),
                &path,
                selfstab_campaign::FsyncPolicy::Always,
            )
            .unwrap();
            for (k, b) in [("a", "aaaa"), ("b", "bbbb"), ("c", "cccc")] {
                assert!(matches!(c.lookup_or_reserve(k, 0), Lookup::Miss));
                c.fulfill(k, doc(b));
            }
        }
        // Reboot with a budget that only fits two entries: replay must
        // keep the most recently written (later-wins) and compact the
        // file to exactly the survivors.
        let c = ResultCache::with_snapshot(
            8,
            &Registry::new(),
            &path,
            selfstab_campaign::FsyncPolicy::Always,
        )
        .unwrap();
        assert!(matches!(c.lookup_or_reserve("a", 0), Lookup::Miss));
        c.abandon("a");
        assert!(matches!(c.lookup_or_reserve("b", 0), Lookup::Hit(_)));
        assert!(matches!(c.lookup_or_reserve("c", 0), Lookup::Hit(_)));
        drop(c);
        let frames = selfstab_campaign::journal::replay_frames(&path).unwrap();
        let keys: Vec<&str> = frames
            .events
            .iter()
            .filter_map(|e| e["key"].as_str())
            .collect();
        assert_eq!(keys, ["b", "c"], "compacted to survivors, oldest first");
    }

    #[test]
    fn torn_snapshot_tail_is_dropped_and_rewritten() {
        let path = tmp("torn.snap");
        let _ = std::fs::remove_file(&path);
        {
            let c = ResultCache::with_snapshot(
                1024,
                &Registry::new(),
                &path,
                selfstab_campaign::FsyncPolicy::Always,
            )
            .unwrap();
            assert!(matches!(c.lookup_or_reserve("a", 0), Lookup::Miss));
            c.fulfill("a", doc("alpha"));
            assert!(matches!(c.lookup_or_reserve("b", 1), Lookup::Miss));
            c.fulfill("b", doc("beta"));
        }
        // Tear the final record in half, as a crash mid-write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let c = ResultCache::with_snapshot(
            1024,
            &Registry::new(),
            &path,
            selfstab_campaign::FsyncPolicy::Always,
        )
        .unwrap();
        assert!(matches!(c.lookup_or_reserve("a", 0), Lookup::Hit(_)));
        assert!(
            matches!(c.lookup_or_reserve("b", 0), Lookup::Miss),
            "the torn record is gone, not resurrected"
        );
        assert_eq!(c.stats_json()["snapshot_restored"], 1u64);
    }
}

//! Admission control: bounded per-kind queues, load shedding, and the
//! memory watchdog.
//!
//! Overload protection exists because the three job kinds have wildly
//! different costs: a `verify` is one bounded scan, a `sweep` multiplies
//! that across a K range, and `synthesize` explores a combinatorial
//! candidate lattice (Faghih et al.'s complexity results make that
//! blow-up structural, not incidental). Unbounded acceptance lets a burst
//! of synthesis submissions wedge the pool while cheap verify traffic
//! starves behind them. So admission is bounded **per kind**: each kind
//! has its own in-flight cap (accepted but not yet terminal), and a
//! submit past the cap is shed with `429 Too Many Requests` +
//! `Retry-After` instead of queued.
//!
//! The **memory watchdog** extends the same idea to a resource the queue
//! caps cannot see: resident set size. When an `--max-rss-mb` budget is
//! configured, a sampler thread reads `/proc/self/statm` and maps RSS
//! pressure onto a shed level that degrades *gracefully* — the expensive,
//! retryable kinds go first:
//!
//! | level | RSS ≥ | sheds |
//! |---|---|---|
//! | 1 | 85% | `synthesize` |
//! | 2 | 92% | + `sweep` |
//! | 3 | 97% | + `verify` (everything) |
//!
//! Shedding never touches accepted jobs: admission is the only gate, so
//! "no accepted job is ever lost" stays true under any shed level.
//! `/v1/readyz` reports the current level and per-kind occupancy so load
//! balancers can route away *before* the 429s start.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use selfstab_telemetry::Registry;
use serde_json::{json, Value};

use crate::jobs::JobKind;

/// RSS fractions at which the watchdog raises the shed level.
const SHED_THRESHOLDS: [f64; 3] = [0.85, 0.92, 0.97];

/// How often the watchdog samples RSS.
const WATCHDOG_INTERVAL: Duration = Duration::from_millis(250);

/// Per-kind in-flight caps (accepted, not yet terminal).
#[derive(Clone, Copy, Debug)]
pub struct PendingCaps {
    /// Max in-flight `verify` jobs.
    pub verify: usize,
    /// Max in-flight `sweep` jobs.
    pub sweep: usize,
    /// Max in-flight `synthesize` jobs.
    pub synthesize: usize,
}

impl Default for PendingCaps {
    fn default() -> Self {
        // The ratios mirror the cost ratios: one synthesis candidate
        // sweep is worth many verifies.
        PendingCaps {
            verify: 256,
            sweep: 64,
            synthesize: 16,
        }
    }
}

impl PendingCaps {
    /// Caps scaled from a single base: `verify = base`, `sweep = base/4`,
    /// `synthesize = base/16` (each at least 1) — the CLI's
    /// `--max-pending` knob.
    pub fn from_base(base: usize) -> Self {
        PendingCaps {
            verify: base.max(1),
            sweep: (base / 4).max(1),
            synthesize: (base / 16).max(1),
        }
    }

    fn cap(&self, kind: JobKind) -> usize {
        match kind {
            JobKind::Verify => self.verify,
            JobKind::Sweep => self.sweep,
            JobKind::Synthesize => self.synthesize,
        }
    }
}

/// Why a submit was shed (the 429's machine-readable `code`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shed {
    /// The kind's in-flight queue is at its cap.
    QueueFull,
    /// The memory watchdog is degrading this kind.
    MemoryPressure,
}

impl Shed {
    /// The structured error code for the 429 body.
    pub fn code(self) -> &'static str {
        match self {
            Shed::QueueFull => "queue_full",
            Shed::MemoryPressure => "memory_pressure",
        }
    }

    /// The human-readable reason.
    pub fn reason(self, kind: JobKind) -> String {
        match self {
            Shed::QueueFull => format!(
                "admission queue for `{}` jobs is full; retry shortly",
                kind.name()
            ),
            Shed::MemoryPressure => format!(
                "server is under memory pressure and is shedding `{}` jobs; retry shortly",
                kind.name()
            ),
        }
    }
}

/// The admission gate: per-kind occupancy gauges, caps, and the shed
/// level the watchdog (or a test) drives.
#[derive(Debug)]
pub struct Admission {
    caps: PendingCaps,
    pending: [AtomicU64; 3],
    /// 0 = accept everything … 3 = shed everything; see the module table.
    shed_level: Arc<AtomicU8>,
    shed_total: Arc<AtomicU64>,
}

impl Admission {
    /// A gate with the given caps, its shed counter registered as
    /// `serve/shed`.
    pub fn new(caps: PendingCaps, registry: &Registry) -> Self {
        Admission {
            caps,
            pending: Default::default(),
            shed_level: Arc::new(AtomicU8::new(0)),
            shed_total: registry.counter("serve/shed"),
        }
    }

    /// Tries to admit one `kind` job: increments the kind's gauge and
    /// returns `Ok(())`, or returns the shed reason without admitting.
    /// Every `Ok` must be balanced by exactly one [`Admission::release`]
    /// when the job reaches a terminal state.
    pub fn admit(&self, kind: JobKind) -> Result<(), Shed> {
        if self.sheds(kind) {
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            return Err(Shed::MemoryPressure);
        }
        let gauge = &self.pending[kind.index()];
        let cap = self.caps.cap(kind) as u64;
        // CAS loop so racing submits cannot both take the last slot.
        let admitted = gauge
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < cap).then_some(n + 1)
            })
            .is_ok();
        if admitted {
            Ok(())
        } else {
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            Err(Shed::QueueFull)
        }
    }

    /// Admits without cap or shed checks — boot replay of jobs that were
    /// accepted before a crash ("no accepted job is ever lost" outranks
    /// the caps). Still balanced by [`Admission::release`] at the job's
    /// terminal state.
    pub fn admit_replayed(&self, kind: JobKind) {
        self.pending[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Releases one admitted job (terminal state reached).
    pub fn release(&self, kind: JobKind) {
        self.pending[kind.index()].fetch_sub(1, Ordering::Relaxed);
    }

    /// In-flight jobs of `kind` (accepted, not yet terminal).
    pub fn pending(&self, kind: JobKind) -> u64 {
        self.pending[kind.index()].load(Ordering::Relaxed)
    }

    /// The current shed level (0 = none).
    pub fn shed_level(&self) -> u8 {
        self.shed_level.load(Ordering::SeqCst)
    }

    /// Whether `kind` is currently shed by the watchdog level. Level 1
    /// sheds `synthesize`, 2 adds `sweep`, 3 adds `verify` — cheapest
    /// traffic survives longest.
    fn sheds(&self, kind: JobKind) -> bool {
        let level = self.shed_level();
        level >= 3 - kind.index() as u8
    }

    /// The handle the watchdog thread writes through.
    pub fn shed_handle(&self) -> Arc<AtomicU8> {
        Arc::clone(&self.shed_level)
    }

    /// Forces a shed level — the ops/test override for drills (the
    /// watchdog will overwrite it at its next sample if one is running).
    pub fn force_shed_level(&self, level: u8) {
        self.shed_level.store(level.min(3), Ordering::SeqCst);
    }

    /// The kinds currently shed, for `/v1/readyz`.
    pub fn shed_kinds(&self) -> Vec<&'static str> {
        [JobKind::Synthesize, JobKind::Sweep, JobKind::Verify]
            .into_iter()
            .filter(|k| self.sheds(*k))
            .map(JobKind::name)
            .collect()
    }

    /// `true` when any kind is saturated (shed by level or at cap) — the
    /// `/v1/readyz` "saturated" predicate.
    pub fn saturated(&self) -> bool {
        self.shed_level() > 0
            || [JobKind::Verify, JobKind::Sweep, JobKind::Synthesize]
                .into_iter()
                .any(|k| self.pending(k) >= self.caps.cap(k) as u64)
    }

    /// The occupancy section of `/v1/readyz`.
    pub fn pending_json(&self) -> Value {
        json!({
            "verify": self.pending(JobKind::Verify),
            "sweep": self.pending(JobKind::Sweep),
            "synthesize": self.pending(JobKind::Synthesize),
        })
    }
}

/// Resident set size in bytes, from `/proc/self/statm` (Linux). `None`
/// where the proc filesystem is unavailable — the watchdog is then inert.
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// Maps an RSS sample onto a shed level under `limit` bytes.
fn level_for(rss: u64, limit: u64) -> u8 {
    let frac = rss as f64 / limit as f64;
    SHED_THRESHOLDS.iter().filter(|&&t| frac >= t).count() as u8
}

/// Spawns the RSS sampler: every [`WATCHDOG_INTERVAL`] it re-derives the
/// shed level from `/proc/self/statm` against `limit_bytes` and stores it
/// through `level`. The thread retires when the server state (and with it
/// the level cell) is dropped.
pub fn spawn_watchdog(level: &Arc<AtomicU8>, limit_bytes: u64, registry: &Registry) {
    let weak: Weak<AtomicU8> = Arc::downgrade(level);
    let rss_gauge = registry.gauge("serve/rss_bytes");
    std::thread::spawn(move || loop {
        let Some(level) = weak.upgrade() else {
            return; // the server is gone; nobody reads the level any more
        };
        if let Some(rss) = rss_bytes() {
            rss_gauge.store(rss, Ordering::Relaxed);
            level.store(level_for(rss, limit_bytes), Ordering::SeqCst);
        }
        drop(level);
        std::thread::sleep(WATCHDOG_INTERVAL);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(caps: PendingCaps) -> Admission {
        Admission::new(caps, &Registry::new())
    }

    #[test]
    fn caps_bound_each_kind_independently() {
        let a = gate(PendingCaps {
            verify: 2,
            sweep: 1,
            synthesize: 1,
        });
        assert!(a.admit(JobKind::Verify).is_ok());
        assert!(a.admit(JobKind::Verify).is_ok());
        assert_eq!(a.admit(JobKind::Verify), Err(Shed::QueueFull));
        // A full verify queue does not touch sweep admission.
        assert!(a.admit(JobKind::Sweep).is_ok());
        assert_eq!(a.admit(JobKind::Sweep), Err(Shed::QueueFull));
        // Release reopens exactly one slot.
        a.release(JobKind::Verify);
        assert!(a.admit(JobKind::Verify).is_ok());
        assert_eq!(a.pending(JobKind::Verify), 2);
    }

    #[test]
    fn shed_levels_degrade_in_cost_order() {
        let a = gate(PendingCaps::default());
        assert!(a.shed_kinds().is_empty());
        a.force_shed_level(1);
        assert_eq!(a.shed_kinds(), vec!["synthesize"]);
        assert_eq!(a.admit(JobKind::Synthesize), Err(Shed::MemoryPressure));
        assert!(a.admit(JobKind::Sweep).is_ok());
        assert!(a.admit(JobKind::Verify).is_ok());
        a.force_shed_level(2);
        assert_eq!(a.shed_kinds(), vec!["synthesize", "sweep"]);
        assert_eq!(a.admit(JobKind::Sweep), Err(Shed::MemoryPressure));
        assert!(a.admit(JobKind::Verify).is_ok());
        a.force_shed_level(3);
        assert_eq!(a.admit(JobKind::Verify), Err(Shed::MemoryPressure));
        assert!(a.saturated());
        a.force_shed_level(0);
        assert!(a.admit(JobKind::Verify).is_ok());
    }

    #[test]
    fn rss_levels_track_the_thresholds() {
        let limit = 1000;
        assert_eq!(level_for(0, limit), 0);
        assert_eq!(level_for(849, limit), 0);
        assert_eq!(level_for(850, limit), 1);
        assert_eq!(level_for(920, limit), 2);
        assert_eq!(level_for(970, limit), 3);
        assert_eq!(level_for(5000, limit), 3);
    }

    #[test]
    fn from_base_scales_and_floors() {
        let caps = PendingCaps::from_base(64);
        assert_eq!((caps.verify, caps.sweep, caps.synthesize), (64, 16, 4));
        let tiny = PendingCaps::from_base(1);
        assert_eq!((tiny.verify, tiny.sweep, tiny.synthesize), (1, 1, 1));
    }
}

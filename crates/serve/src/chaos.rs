//! Deterministic fault injection for the service — PR 3's [`ChaosPlan`]
//! lens turned on the daemon.
//!
//! A [`ServeChaos`] is a seeded, budgeted adversary consulted at the
//! service's own fault points:
//!
//! * **injected job panics** — [`ServeChaos::should_panic`] fires inside
//!   the pool closure's `catch_unwind` region, exercising the per-job
//!   retry-with-deterministic-backoff path and, when the retry budget is
//!   exhausted, the `failed` terminal state (journaled, so a failure is
//!   just as durable as a success);
//! * **torn responses** — [`ServeChaos::should_tear_response`] makes the
//!   connection handler write half the response bytes and slam the
//!   connection, exercising every client's retry path while proving the
//!   *job* behind the response is never lost (it completes and stays
//!   resolvable by id).
//!
//! Decisions are pure functions of `(seed, key, attempt)` under FNV-1a
//! with budgets derived from the seed, so a chaos run is replayable from
//! its seed alone. Kill-mid-job — the third fault class — cannot be
//! injected from inside the process; the CI crash drill provides it with
//! a literal `SIGKILL` and byte-diffs the replayed results against a
//! fault-free run.
//!
//! Surfaced by the hidden `selfstab serve --chaos SEED` flag.
//!
//! [`ChaosPlan`]: selfstab_campaign::ChaosPlan

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared mutable budgets (one set per server, shared by all handlers).
#[derive(Debug, Default)]
struct ChaosState {
    panics_left: AtomicU64,
    tears_left: AtomicU64,
}

/// A seeded, budgeted service-fault plan (see the module docs).
#[derive(Clone, Debug)]
pub struct ServeChaos {
    seed: u64,
    state: Arc<ChaosState>,
}

impl ServeChaos {
    /// A plan whose budgets derive from `seed`: up to 4 injected job
    /// panics and up to 3 torn responses per server lifetime.
    pub fn from_seed(seed: u64) -> Self {
        let panics = fnv(&[seed, 0x0070_616e_6963]) % 5; // 0..=4
        let tears = fnv(&[seed, 0x7465_6172]) % 4; // 0..=3
        ServeChaos::with_budgets(seed, panics, tears)
    }

    /// A plan with explicit budgets (test API).
    pub fn with_budgets(seed: u64, panics: u64, tears: u64) -> Self {
        ServeChaos {
            seed,
            state: Arc::new(ChaosState {
                panics_left: AtomicU64::new(panics),
                tears_left: AtomicU64::new(tears),
            }),
        }
    }

    /// Should this execution attempt of the job keyed `key` be killed by
    /// an injected panic? Roughly one attempt in two by seed hash, gated
    /// by the remaining panic budget — so retries eventually get through.
    pub fn should_panic(&self, key: &str, attempt: u32) -> bool {
        let h = fnv(&[self.seed, 0x0070_616e_6963, fnv_str(key), attempt as u64]);
        h.is_multiple_of(2) && take(&self.state.panics_left)
    }

    /// Should this response be torn mid-write? Decided per response by a
    /// seeded connection counter, gated by the tear budget.
    pub fn should_tear_response(&self, response_index: u64) -> bool {
        let h = fnv(&[self.seed, 0x746f_726e, response_index]);
        h.is_multiple_of(3) && take(&self.state.tears_left)
    }
}

/// Consumes one unit of `budget` if any remains.
fn take(budget: &AtomicU64) -> bool {
    budget
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// FNV-1a over a word sequence (the repo's standard no-dependency hash).
fn fnv(words: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// FNV-1a over a string's bytes.
fn fnv_str(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed_and_budgeted() {
        let a = ServeChaos::from_seed(7);
        let b = ServeChaos::from_seed(7);
        let keys: Vec<String> = (0..50).map(|i| format!("key-{i}")).collect();
        let fired_a: Vec<bool> = keys.iter().map(|k| a.should_panic(k, 0)).collect();
        let fired_b: Vec<bool> = keys.iter().map(|k| b.should_panic(k, 0)).collect();
        assert_eq!(fired_a, fired_b);
        assert!(fired_a.iter().filter(|&&f| f).count() <= 4);
        let tears = (0..100).filter(|&i| a.should_tear_response(i)).count();
        assert!(tears <= 3);
    }

    #[test]
    fn budgets_are_shared_across_clones() {
        let plan = ServeChaos::with_budgets(3, 1, 0);
        let clone = plan.clone();
        let fired = (0..100)
            .filter(|i| plan.should_panic("a", *i) || clone.should_panic("b", *i))
            .count();
        assert_eq!(fired, 1);
        assert!(!plan.should_tear_response(0));
    }

    #[test]
    fn retries_eventually_get_through_a_bounded_budget() {
        // With any finite panic budget, some attempt of every job
        // eventually executes: the budget strictly decreases per injection.
        let plan = ServeChaos::with_budgets(11, 4, 0);
        for job in 0..10 {
            let key = format!("job-{job}");
            let mut attempt = 0;
            while plan.should_panic(&key, attempt) {
                attempt += 1;
                assert!(attempt < 16, "budget must exhaust");
            }
        }
    }
}

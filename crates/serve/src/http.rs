//! A hand-rolled HTTP/1.1 request parser and response writer.
//!
//! The workspace is offline — every dependency is a vendored path crate —
//! so there is no tokio/hyper to lean on. What the service actually needs
//! from HTTP is small and is implemented here directly over `std::io`:
//!
//! * request line + headers + `Content-Length` bodies (no chunked
//!   encoding — the JSON API never produces it, and a request that asks
//!   for it is rejected as unsupported);
//! * keep-alive with pipelining: the connection buffer preserves bytes
//!   beyond the current request, so back-to-back requests written in one
//!   TCP segment each get their own response;
//! * hard limits instead of trust: oversized heads are rejected with
//!   `400`, oversized bodies with `413`, and a request that stalls,
//!   dribbles, or half-closes mid-transfer gets `408 Request Timeout`
//!   and a closed connection — none of these can panic or allocate
//!   unboundedly.
//!
//! The slow-loris defenses are two distinct clocks with two distinct
//! outcomes. Between requests, a keep-alive connection may sit idle
//! until the socket read timeout fires; that is normal and the
//! connection just closes (no response — there is no request to answer).
//! *Inside* a request — one the peer has started but not finished — a
//! read timeout, a per-request deadline expiry ([`RequestReader`] with a
//! deadline counts from the request's first byte, which catches clients
//! dribbling one header byte per poll forever), or an EOF/half-close all
//! yield [`HttpError::RequestTimedOut`], and the handler answers `408`
//! before closing so the worker is freed and the client is told why.
//!
//! The parser is generic over `Read` so unit tests feed it byte slices;
//! the server hands it a `TcpStream` with a read timeout.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body, in bytes. Spec sources are a few
/// hundred bytes; a megabyte leaves three orders of magnitude of slack.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target's path (query string split off into
    /// [`Request::query`]).
    pub path: String,
    /// The raw query string, without the `?` (empty when absent). The
    /// router uses it for rendering options (`?format=prometheus`);
    /// routing itself is on the path alone.
    pub query: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the query string contains `key=value` as one
    /// `&`-separated component.
    pub fn query_is(&self, key: &str, value: &str) -> bool {
        self.query
            .split('&')
            .any(|pair| pair.split_once('=') == Some((key, value)))
    }
}

/// Why a request could not be parsed, and what the connection handler
/// should do about it.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically broken request → respond `400` and close.
    Malformed(String),
    /// Request line + headers exceed [`MAX_HEAD_BYTES`] → `400`, close.
    HeadTooLarge,
    /// Declared body exceeds [`MAX_BODY_BYTES`] → `413`, close.
    BodyTooLarge,
    /// The request stalled, dribbled past its deadline, or was torn /
    /// half-closed mid-transfer → respond `408` and close, freeing the
    /// worker.
    RequestTimedOut,
    /// Transport-level trouble → close silently.
    Io(std::io::Error),
}

/// Reads requests off one connection, preserving pipelined bytes between
/// calls.
pub struct RequestReader<R> {
    stream: R,
    buf: Vec<u8>,
    /// Wall-clock budget for one whole request, counted from its first
    /// byte. `None` disables the clock (unit tests over byte slices).
    deadline: Option<Duration>,
    /// When the current request's first byte arrived.
    started: Option<Instant>,
}

impl<R: Read> RequestReader<R> {
    /// A reader over `stream` with an empty buffer and no request
    /// deadline.
    pub fn new(stream: R) -> Self {
        RequestReader {
            stream,
            buf: Vec::new(),
            deadline: None,
            started: None,
        }
    }

    /// A reader that bounds every request to `deadline` of wall clock,
    /// first byte to last — the defense against clients that dribble
    /// bytes fast enough to keep resetting the socket read timeout.
    pub fn with_deadline(stream: R, deadline: Duration) -> Self {
        RequestReader {
            deadline: Some(deadline),
            ..RequestReader::new(stream)
        }
    }

    /// Parses the next request. `Ok(None)` means the connection ended
    /// *between* requests — a clean peer close or an idle keep-alive
    /// timeout, the normal ends of keep-alive. The same conditions
    /// mid-request are [`HttpError::RequestTimedOut`] instead: the peer
    /// started something it never finished.
    ///
    /// # Errors
    ///
    /// See [`HttpError`] for the response/close protocol per variant.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        // The request clock starts at its first byte; pipelined bytes
        // already buffered count as that first byte.
        self.started = (!self.buf.is_empty()).then(Instant::now);
        // Accumulate until the head terminator is in the buffer.
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::HeadTooLarge);
            }
            match self.fill() {
                Ok(0) if self.buf.is_empty() => return Ok(None),
                Ok(0) => return Err(HttpError::RequestTimedOut),
                Ok(_) => {}
                // A read timeout with nothing buffered is keep-alive
                // idleness, not an offense.
                Err(HttpError::RequestTimedOut) if self.buf.is_empty() => return Ok(None),
                Err(e) => return Err(e),
            }
        };
        if head_end > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?
            .to_owned();
        let (method, path, query, version, headers) = parse_head(&head)?;

        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(HttpError::Malformed(
                "transfer-encoding is not supported; send a Content-Length body".into(),
            ));
        }
        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            None => 0,
            Some((_, v)) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{v}`")))?,
        };
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }

        // Pull the body in, then carve request bytes out of the buffer —
        // whatever follows belongs to the next pipelined request.
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            if self.fill()? == 0 {
                // Half-close or disappearance mid-body.
                return Err(HttpError::RequestTimedOut);
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);

        let keep_alive = wants_keep_alive(version, &headers);
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
            keep_alive,
        }))
    }

    /// One `read` into the buffer; returns the byte count (0 = EOF).
    /// Enforces the per-request deadline before blocking, so a dribbling
    /// peer cannot stretch one request forever by always arriving just
    /// inside the socket timeout.
    fn fill(&mut self) -> Result<usize, HttpError> {
        if let (Some(started), Some(deadline)) = (self.started, self.deadline) {
            if started.elapsed() >= deadline {
                return Err(HttpError::RequestTimedOut);
            }
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    if n > 0 && self.started.is_none() {
                        self.started = Some(Instant::now());
                    }
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Socket read timeout: the peer is stalling. The
                    // caller decides whether that is idleness (between
                    // requests) or an offense (mid-request).
                    return Err(HttpError::RequestTimedOut);
                }
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits the head into (method, path, query, version, lowercased
/// headers).
#[allow(clippy::type_complexity)]
fn parse_head(
    head: &str,
) -> Result<(String, String, String, u8, Vec<(String, String)>), HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    let minor = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        other => {
            return Err(HttpError::Malformed(format!(
                "unsupported version `{other}`"
            )))
        }
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    // Split off the query string: the API routes on the path alone and
    // consults the query only for rendering options.
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_owned(), query.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    Ok((method.to_owned(), path, query, minor, headers))
}

/// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
/// `Connection` header overrides either way.
fn wants_keep_alive(minor: u8, headers: &[(String, String)]) -> bool {
    match headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => minor >= 1,
    }
}

/// One HTTP response, always carrying a JSON body.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the standard set (name, value).
    pub headers: Vec<(String, String)>,
    /// The response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A `text/plain` response (the Prometheus exposition endpoint) —
    /// the explicit `content-type` header overrides the JSON default.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![(
                "content-type".to_owned(),
                "text/plain; version=0.0.4; charset=utf-8".to_owned(),
            )],
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_owned(), value.into()));
        self
    }

    /// Serializes the response; `keep_alive` selects the `Connection`
    /// header.
    ///
    /// # Errors
    ///
    /// Propagates transport write errors.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let default_type = if self.headers.iter().all(|(name, _)| name != "content-type") {
            "content-type: application/json\r\n"
        } else {
            ""
        };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n{default_type}content-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The reason phrase for the status codes the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(bytes: &[u8]) -> RequestReader<&[u8]> {
        RequestReader::new(bytes)
    }

    #[test]
    fn parses_a_simple_get() {
        let mut r = read_all(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = r.next_request().unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
        assert!(r.next_request().unwrap().is_none(), "clean EOF after");
    }

    #[test]
    fn parses_a_post_with_body_and_strips_query() {
        let mut r =
            read_all(b"POST /v1/jobs?x=1 HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"k\":\"v\" }!");
        let req = r.next_request().unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query, "x=1");
        assert!(req.query_is("x", "1"));
        assert!(!req.query_is("x", "2"));
        assert_eq!(req.body, b"{\"k\":\"v\" }!");
    }

    #[test]
    fn pipelined_requests_each_parse() {
        let mut r = read_all(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let a = r.next_request().unwrap().unwrap();
        let b = r.next_request().unwrap().unwrap();
        let c = r.next_request().unwrap().unwrap();
        assert_eq!((a.path.as_str(), a.keep_alive), ("/a", true));
        assert_eq!((b.path.as_str(), b.body.as_slice()), ("/b", &b"hi"[..]));
        assert_eq!((c.path.as_str(), c.keep_alive), ("/c", false));
        assert!(r.next_request().unwrap().is_none());
    }

    #[test]
    fn torn_requests_time_out_instead_of_panicking() {
        // Half-close mid-head.
        let mut r = read_all(b"GET /v1/he");
        assert!(matches!(r.next_request(), Err(HttpError::RequestTimedOut)));
        // Half-close mid-body.
        let mut r = read_all(b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort");
        assert!(matches!(r.next_request(), Err(HttpError::RequestTimedOut)));
    }

    /// A reader that yields `data` one byte per call, then stalls with
    /// `WouldBlock` forever — the slow-loris shape.
    struct Dribble {
        data: Vec<u8>,
        at: usize,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.at < self.data.len() {
                buf[0] = self.data[self.at];
                self.at += 1;
                Ok(1)
            } else {
                Err(std::io::ErrorKind::WouldBlock.into())
            }
        }
    }

    #[test]
    fn idle_timeout_between_requests_is_a_clean_close() {
        // Nothing buffered, peer never sends a byte: keep-alive idleness.
        let mut r = RequestReader::new(Dribble {
            data: Vec::new(),
            at: 0,
        });
        assert!(r.next_request().unwrap().is_none());
    }

    #[test]
    fn stalls_mid_request_are_request_timeouts() {
        // Some head bytes arrive, then the peer stalls forever.
        let mut r = RequestReader::new(Dribble {
            data: b"GET /v1/he".to_vec(),
            at: 0,
        });
        assert!(matches!(r.next_request(), Err(HttpError::RequestTimedOut)));
    }

    #[test]
    fn the_request_deadline_catches_a_dribbler() {
        // The peer delivers a full (long) request one byte at a time —
        // never stalling long enough for a socket timeout — but the
        // per-request deadline has already expired by the second byte.
        let head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(512));
        let mut r = RequestReader::with_deadline(
            Dribble {
                data: head.into_bytes(),
                at: 0,
            },
            Duration::ZERO,
        );
        assert!(matches!(r.next_request(), Err(HttpError::RequestTimedOut)));
    }

    #[test]
    fn a_roomy_deadline_does_not_reject_normal_requests() {
        let mut r = RequestReader::with_deadline(
            &b"GET /v1/healthz HTTP/1.1\r\n\r\n"[..],
            Duration::from_secs(60),
        );
        assert_eq!(r.next_request().unwrap().unwrap().path, "/v1/healthz");
        assert!(r.next_request().unwrap().is_none());
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let huge_header = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        let mut r = RequestReader::new(huge_header.as_bytes());
        assert!(matches!(r.next_request(), Err(HttpError::HeadTooLarge)));

        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut r = RequestReader::new(huge_body.as_bytes());
        assert!(matches!(r.next_request(), Err(HttpError::BodyTooLarge)));
    }

    #[test]
    fn malformed_heads_are_diagnosed() {
        for bad in [
            &b"NOT_A_REQUEST\r\n\r\n"[..],
            &b"GET / HTTP/2.0\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
        ] {
            let mut r = RequestReader::new(bad);
            assert!(
                matches!(r.next_request(), Err(HttpError::Malformed(_))),
                "{}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn http10_defaults_to_close() {
        let mut r = read_all(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r.next_request().unwrap().unwrap().keep_alive);
        let mut r = read_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.next_request().unwrap().unwrap().keep_alive);
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("x-selfstab-exit-code", "0")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("x-selfstab-exit-code: 0\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }
}

//! Observability-pipeline tests: request-scoped tracing, the Prometheus
//! exposition endpoint, and the persistent results registry.
//!
//! Everything here drives the router in-process through
//! [`ServeState::handle`] — the same code path a socket request takes
//! after parsing — and checks the ISSUE's contracts: the trace id
//! returned at ingress reappears in the status document and on every
//! span of the trace document; concurrent submits never share a trace
//! id and their spans nest inside their own request root; the
//! Prometheus text agrees with the JSON snapshot; registry rows from
//! identical runs are byte-identical modulo `meta`; and none of it
//! perturbs result bytes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use selfstab_core::registry_row::read_rows;
use selfstab_serve::http::{Request, Response};
use selfstab_serve::{ServeConfig, ServeState};
use serde_json::Value;

const AGREEMENT: &str = "\
protocol agreement
domain x { 0 1 }
locality unidirectional
legit x[r] == x[r-1]
action x[r-1] == 1 && x[r] == 0 -> x[r] := 1
";

fn state() -> Arc<ServeState> {
    state_with(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    })
}

fn state_with(config: ServeConfig) -> Arc<ServeState> {
    ServeState::new(&config).expect("state builds")
}

fn request(method: &str, path: &str, body: &str) -> Request {
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query: query.to_owned(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
        keep_alive: true,
    }
}

fn submit_body(kind: &str, extra: &str) -> String {
    let spec = Value::String(AGREEMENT.to_owned());
    format!("{{\"kind\": \"{kind}\", \"spec\": {spec}{extra}}}")
}

fn body_json(body: &[u8]) -> Value {
    serde_json::from_str(std::str::from_utf8(body).expect("response body is UTF-8"))
        .expect("response body is JSON")
}

fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
    resp.headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn await_job(state: &Arc<ServeState>, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = state.handle(&request("GET", &format!("/v1/jobs/{id}"), ""));
        assert_eq!(resp.status, 200);
        let status = body_json(&resp.body)["status"].as_str().unwrap().to_owned();
        if status != "queued" && status != "running" {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} never settled");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("selfstab-observability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

// ---- request-scoped tracing ----------------------------------------------

#[test]
fn trace_id_flows_from_header_to_status_to_every_span() {
    let s = state();
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("verify", ", \"k\": 4"),
    ));
    assert_eq!(resp.status, 202);
    let trace_id = header(&resp, "x-selfstab-trace-id")
        .expect("202 carries the trace id")
        .to_owned();
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "done");

    // The status document repeats the id.
    let status = body_json(
        &s.handle(&request("GET", &format!("/v1/jobs/{id}"), ""))
            .body,
    );
    assert_eq!(status["trace_id"], trace_id.as_str(), "{status}");

    // The trace document: a Chrome-trace event list whose every event
    // carries the trace id, with a single `request` root containing all
    // other spans on the job's lane.
    let resp = s.handle(&request("GET", &format!("/v1/jobs/{id}/trace"), ""));
    assert_eq!(resp.status, 200);
    let doc = body_json(&resp.body);
    assert_eq!(doc["displayTimeUnit"], "ms");
    let events = doc["traceEvents"].as_array().unwrap();
    assert!(events.len() >= 4, "root + admission + cache + engine spans");
    let root = &events[0];
    assert_eq!(root["name"], "request");
    let root_ts = root["ts"].as_u64().unwrap();
    let root_end = root_ts + root["dur"].as_u64().unwrap();
    let names: Vec<&str> = events.iter().map(|e| e["name"].as_str().unwrap()).collect();
    for span in ["admission", "cache_lookup", "queue_wait", "fused_scan"] {
        assert!(names.contains(&span), "missing {span} in {names:?}");
    }
    for event in events {
        assert_eq!(event["ph"], "X");
        assert_eq!(event["tid"], id, "one lane per job");
        assert_eq!(event["args"]["trace_id"], trace_id.as_str());
        let ts = event["ts"].as_u64().unwrap();
        assert!(
            ts >= root_ts && ts + event["dur"].as_u64().unwrap() <= root_end,
            "span {} nests inside the request root",
            event["name"]
        );
    }
}

#[test]
fn every_response_carries_a_distinct_trace_id() {
    let s = state();
    let a = s.handle(&request("GET", "/v1/healthz", ""));
    let b = s.handle(&request("GET", "/v1/healthz", ""));
    let ta = header(&a, "x-selfstab-trace-id").unwrap();
    let tb = header(&b, "x-selfstab-trace-id").unwrap();
    assert_ne!(ta, tb, "two requests, two ids");
}

#[test]
fn concurrent_submits_get_unique_trace_ids_and_nested_spans() {
    let s = state();
    // Distinct specs (k varies) so nothing coalesces: every submit is a
    // real job with its own lane.
    let responses: Vec<(u64, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    (0..4)
                        .map(|i| {
                            let k = 3 + (t * 4 + i) % 8;
                            let resp = s.handle(&request(
                                "POST",
                                "/v1/jobs",
                                &submit_body("verify", &format!(", \"k\": {k}")),
                            ));
                            assert!(resp.status == 200 || resp.status == 202);
                            (
                                body_json(&resp.body)["id"].as_u64().unwrap(),
                                header(&resp, "x-selfstab-trace-id").unwrap().to_owned(),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let mut ids: Vec<&str> = responses.iter().map(|(_, t)| t.as_str()).collect();
    let total = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), total, "all 16 responses carry distinct ids");

    // Each computed job's trace nests inside its own root and never
    // mentions another request's trace id (coalesced joins excepted —
    // ruled out here by distinct specs... except repeats of the same k,
    // which coalesce by design; those share the computing job's id).
    let mut jobs: Vec<u64> = responses.iter().map(|(id, _)| *id).collect();
    jobs.sort_unstable();
    jobs.dedup();
    for id in jobs {
        assert_eq!(await_job(&s, id), "done");
        let doc = body_json(
            &s.handle(&request("GET", &format!("/v1/jobs/{id}/trace"), ""))
                .body,
        );
        let events = doc["traceEvents"].as_array().unwrap();
        let root = &events[0];
        let root_ts = root["ts"].as_u64().unwrap();
        let root_end = root_ts + root["dur"].as_u64().unwrap();
        let own = root["args"]["trace_id"].as_str().unwrap();
        for event in events {
            assert_eq!(event["tid"], id);
            let ts = event["ts"].as_u64().unwrap();
            assert!(ts >= root_ts && ts + event["dur"].as_u64().unwrap() <= root_end);
            // A coalesced_submit span records the *joining* request's
            // id; every other span belongs to this job's request.
            if event["name"] != "coalesced_submit" {
                assert_eq!(event["args"]["trace_id"], own);
            }
        }
    }
}

#[test]
fn replayed_jobs_have_no_trace_and_say_so() {
    // A missing job is 404 not_found; an existing job without a trace
    // (journal replay) is 404 no_trace — exercised via the cheap proxy
    // of a bad id here; the replay path is covered in durability.rs.
    let s = state();
    let resp = s.handle(&request("GET", "/v1/jobs/999/trace", ""));
    assert_eq!(resp.status, 404);
    assert_eq!(body_json(&resp.body)["code"], "not_found");
}

#[test]
fn drain_writes_the_interleaved_trace_file() {
    let path = tmp("drain.trace.json");
    let _ = std::fs::remove_file(&path);
    let s = state_with(ServeConfig {
        threads: 2,
        trace: Some(path.clone()),
        ..ServeConfig::default()
    });
    let mut ids = Vec::new();
    for k in [3, 4] {
        let resp = s.handle(&request(
            "POST",
            "/v1/jobs",
            &submit_body("verify", &format!(", \"k\": {k}")),
        ));
        ids.push(body_json(&resp.body)["id"].as_u64().unwrap());
    }
    for id in &ids {
        assert_eq!(await_job(&s, *id), "done");
    }
    s.begin_drain();
    s.shutdown_pool();
    s.write_trace_file();

    let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    // Both jobs' lanes are present, each with its own request root.
    for id in ids {
        assert!(
            events
                .iter()
                .any(|e| e["name"] == "request" && e["tid"] == id),
            "job {id} lane in the interleaved file"
        );
    }
}

// ---- prometheus exposition -----------------------------------------------

#[test]
fn prometheus_format_negotiates_via_query_and_content_type() {
    let s = state();
    let json = s.handle(&request("GET", "/v1/metrics", ""));
    assert_eq!(json.status, 200);
    assert!(
        matches!(body_json(&json.body), Value::Object(_)),
        "default stays JSON"
    );

    let prom = s.handle(&request("GET", "/v1/metrics?format=prometheus", ""));
    assert_eq!(prom.status, 200);
    assert_eq!(
        header(&prom, "content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    let text = String::from_utf8(prom.body).unwrap();
    assert!(text.contains("# TYPE selfstab_"), "{text}");
}

#[test]
fn prometheus_histograms_agree_with_the_json_snapshot() {
    let s = state();
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("verify", ", \"k\": 4"),
    ));
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "done");

    let json = body_json(&s.handle(&request("GET", "/v1/metrics", "")).body);
    let text = String::from_utf8(
        s.handle(&request("GET", "/v1/metrics?format=prometheus", ""))
            .body,
    )
    .unwrap();

    // Counters: every JSON counter appears as a `_total` sample with the
    // same value.
    let scalar = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
            .unwrap_or_else(|| panic!("missing sample {name} in:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(
        scalar("selfstab_serve_jobs_submitted_total"),
        json["counters"]["serve/jobs_submitted"].as_u64().unwrap()
    );

    // The execution histogram: `_count`/`_sum` match the labeled series'
    // JSON snapshot exactly.
    let hist = &json["histograms"]["serve/exec_us{kind=\"verify\",outcome=\"done\"}"];
    assert!(!hist.is_null(), "{json}");
    let labels = "{kind=\"verify\",outcome=\"done\"}";
    assert_eq!(
        scalar(&format!("selfstab_serve_exec_us_count{labels}")),
        hist["count"].as_u64().unwrap()
    );
    assert_eq!(
        scalar(&format!("selfstab_serve_exec_us_sum{labels}")),
        hist["sum"].as_u64().unwrap()
    );
    // Queue-wait and TTFB histograms exist for the endpoints exercised.
    assert!(text.contains("selfstab_serve_queue_wait_us_bucket{kind=\"verify\","));
    assert!(text.contains("selfstab_serve_ttfb_us_count{endpoint=\"submit\"}"));

    // Gauges registered by the refresh pass.
    assert!(
        text.contains("# TYPE selfstab_serve_pending gauge"),
        "{text}"
    );
    assert!(text.contains("selfstab_cache_bytes "), "{text}");
}

// ---- determinism contract ------------------------------------------------

#[test]
fn tracing_and_registry_leave_result_bytes_untouched() {
    // Two servers, one fully instrumented, one bare: the result
    // documents must be byte-identical — observability is out-of-band.
    let registry_path = tmp("untouched.registry.jsonl");
    let _ = std::fs::remove_file(&registry_path);
    let instrumented = state_with(ServeConfig {
        threads: 2,
        trace: Some(tmp("untouched.trace.json")),
        results_registry: Some(registry_path),
        ..ServeConfig::default()
    });
    let bare = state();
    let mut bodies = Vec::new();
    for s in [&instrumented, &bare] {
        let resp = s.handle(&request(
            "POST",
            "/v1/jobs",
            &submit_body("verify", ", \"k\": 4"),
        ));
        let id = body_json(&resp.body)["id"].as_u64().unwrap();
        assert_eq!(await_job(s, id), "done");
        let result = s.handle(&request("GET", &format!("/v1/jobs/{id}/result"), ""));
        assert_eq!(result.status, 200);
        bodies.push(result.body);
    }
    assert_eq!(bodies[0], bodies[1], "result bytes identical");
}

// ---- persistent results registry -----------------------------------------

#[test]
fn identical_runs_append_byte_identical_rows_modulo_meta() {
    let strip_meta = |line: &str| {
        let mut v: Value = serde_json::from_str(line).unwrap();
        if let Value::Object(map) = &mut v {
            map.remove("meta");
        }
        v.to_string()
    };
    let run = |name: &str| -> Vec<String> {
        let path = tmp(name);
        let _ = std::fs::remove_file(&path);
        let s = state_with(ServeConfig {
            threads: 2,
            results_registry: Some(path.clone()),
            ..ServeConfig::default()
        });
        for (kind, extra) in [("verify", ", \"k\": 4"), ("sweep", ", \"k\": 3, \"to\": 5")] {
            let resp = s.handle(&request("POST", "/v1/jobs", &submit_body(kind, extra)));
            let id = body_json(&resp.body)["id"].as_u64().unwrap();
            assert_eq!(await_job(&s, id), "done");
        }
        // A repeat submit answers from cache and appends nothing — the
        // registry records measurements, not cache traffic.
        let resp = s.handle(&request(
            "POST",
            "/v1/jobs",
            &submit_body("verify", ", \"k\": 4"),
        ));
        assert_eq!(body_json(&resp.body)["cached"], true);
        std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(strip_meta)
            .collect()
    };
    let first = run("registry-a.jsonl");
    let second = run("registry-b.jsonl");
    assert_eq!(first.len(), 2, "one row per computed job: {first:?}");
    assert_eq!(first, second, "identical runs, identical rows modulo meta");

    // Rows parse back through the shared schema and carry deterministic
    // KPIs.
    let path = tmp("registry-a.jsonl");
    let rows = read_rows(&path).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].source, "serve");
    assert_eq!(rows[0].kind, "verify");
    assert_eq!(rows[0].k, "4..4");
    assert_eq!(rows[0].kpis["exit_code"], 0u64);
    assert!(rows[0].kpis["counters"]["states_visited"].as_u64().unwrap() > 0);
    assert_eq!(rows[1].kind, "sweep");
    assert_eq!(rows[1].k, "3..5");
}

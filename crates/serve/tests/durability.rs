//! Durability and chaos tests: the crash-recovery contract of the job
//! journal, warm cache restarts, admission storms, and the seeded fault
//! injector — everything the CI crash drill checks with a literal
//! `SIGKILL`, exercised here in-process so failures localize.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use selfstab_campaign::FsyncPolicy;
use selfstab_global::{check::ConvergenceReport, EngineConfig, RingInstance};
use selfstab_protocol::file::parse_protocol_file;
use selfstab_serve::http::Request;
use selfstab_serve::journal::{frame_event, replay};
use selfstab_serve::{
    render, JobKind, JobRequest, PendingCaps, ServeChaos, ServeConfig, ServeState,
};
use serde_json::{json, Value};

const AGREEMENT: &str = "\
protocol agreement
domain x { 0 1 }
locality unidirectional
legit x[r] == x[r-1]
action x[r-1] == 1 && x[r] == 0 -> x[r] := 1
";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("selfstab-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn state_with(config: ServeConfig) -> Arc<ServeState> {
    ServeState::new(&config).expect("state builds")
}

fn request(method: &str, path: &str, body: &str) -> Request {
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query: query.to_owned(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
        keep_alive: true,
    }
}

fn submit_body(kind: &str, extra: &str) -> String {
    let spec = Value::String(AGREEMENT.to_owned());
    format!("{{\"kind\": \"{kind}\", \"spec\": {spec}{extra}}}")
}

fn body_json(body: &[u8]) -> Value {
    serde_json::from_str(std::str::from_utf8(body).expect("response body is UTF-8"))
        .expect("response body is JSON")
}

fn await_job(state: &Arc<ServeState>, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = state.handle(&request("GET", &format!("/v1/jobs/{id}"), ""));
        assert_eq!(resp.status, 200, "job {id} must stay resolvable");
        let status = body_json(&resp.body)["status"].as_str().unwrap().to_owned();
        if status != "queued" && status != "running" {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} never settled");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn result_bytes(state: &Arc<ServeState>, id: u64) -> (u16, Vec<u8>) {
    let resp = state.handle(&request("GET", &format!("/v1/jobs/{id}/result"), ""));
    (resp.status, resp.body)
}

/// The `check --json` bytes the CLI would print for this spec at `k`.
fn cli_document(k: usize) -> String {
    let protocol = parse_protocol_file(AGREEMENT).unwrap();
    let ring = RingInstance::symmetric(&protocol, k).unwrap();
    let report = ConvergenceReport::check_with(&ring, &EngineConfig::sequential());
    render::check_document(vec![render::convergence_report(&report)])
}

fn journaled_config(journal: &Path) -> ServeConfig {
    ServeConfig {
        threads: 1,
        journal: Some(journal.to_path_buf()),
        fsync: FsyncPolicy::Always,
        ..ServeConfig::default()
    }
}

#[test]
fn completed_jobs_resolve_after_restart_without_rerunning() {
    let journal = tmp("resolve.jsonl");
    let _ = std::fs::remove_file(&journal);

    let s = state_with(journaled_config(&journal));
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("verify", ", \"k\": 4"),
    ));
    assert_eq!(resp.status, 202);
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "done");
    let (status, before) = result_bytes(&s, id);
    assert_eq!(status, 200);
    s.begin_drain();
    s.shutdown_pool();
    drop(s);

    // Same journal, fresh process: the id must not 404, the bytes must
    // not change, and nothing re-executes.
    let s = state_with(journaled_config(&journal));
    let (status, after) = result_bytes(&s, id);
    assert_eq!(status, 200, "completed job resolves across restart");
    assert_eq!(after, before, "byte-identical across restart");
    assert_eq!(String::from_utf8(after).unwrap(), cli_document(4));
    assert_eq!(s.executed(), 0, "terminal replay needs no pool work");

    // The id space continues past the replayed jobs.
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("sweep", ", \"k\": 2, \"to\": 5"),
    ));
    let id2 = body_json(&resp.body)["id"].as_u64().unwrap();
    assert!(id2 > id, "fresh submits never reuse a journaled id");
    assert_eq!(await_job(&s, id2), "done");
}

#[test]
fn interrupted_jobs_reenqueue_at_boot_and_converge_to_fault_free_bytes() {
    // Hand-assemble the journal a crash would leave behind: an accepted
    // job whose terminal record never made it to disk.
    let journal = tmp("interrupted.jsonl");
    let body: Value = serde_json::from_str(&submit_body("verify", ", \"k\": 4")).unwrap();
    let key = JobRequest::from_json(&body).unwrap().cache_key();
    let wire = format!(
        "{}{}",
        frame_event(&json!({"ev": "serve", "version": 1})),
        frame_event(&json!({
            "ev": "submitted",
            "id": 1,
            "kind": "verify",
            "key": key.clone(),
            "request": body.clone(),
        })),
    );
    std::fs::write(&journal, wire).unwrap();

    let s = state_with(journaled_config(&journal));
    assert_eq!(await_job(&s, 1), "done", "the crash's collateral re-runs");
    let (status, bytes) = result_bytes(&s, 1);
    assert_eq!(status, 200);
    assert_eq!(
        String::from_utf8(bytes).unwrap(),
        cli_document(4),
        "replay + re-execution converges to the fault-free document"
    );
    assert_eq!(s.executed(), 1);
    // The re-run was journaled: the *next* restart replays it as terminal.
    s.begin_drain();
    s.shutdown_pool();
    drop(s);
    let s = state_with(journaled_config(&journal));
    let (status, bytes) = result_bytes(&s, 1);
    assert_eq!(status, 200);
    assert_eq!(String::from_utf8(bytes).unwrap(), cli_document(4));
    assert_eq!(s.executed(), 0);
}

#[test]
fn warm_cache_snapshot_answers_repeat_traffic_without_pool_work() {
    let snapshot = tmp("cache.snap");
    let _ = std::fs::remove_file(&snapshot);
    let config = || ServeConfig {
        threads: 1,
        cache_snapshot: Some(snapshot.clone()),
        fsync: FsyncPolicy::Always,
        ..ServeConfig::default()
    };

    let s = state_with(config());
    let body = submit_body("verify", ", \"k\": 4");
    let resp = s.handle(&request("POST", "/v1/jobs", &body));
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "done");
    let (_, before) = result_bytes(&s, id);
    s.begin_drain();
    s.shutdown_pool();
    drop(s);

    let s = state_with(config());
    let stats = body_json(&s.handle(&request("GET", "/v1/cache/stats", "")).body);
    assert!(stats["snapshot_restored"].as_u64().unwrap() >= 1, "{stats}");
    // A repeat submit is a warm hit: answered done, no pool work.
    let resp = s.handle(&request("POST", "/v1/jobs", &body));
    assert_eq!(resp.status, 200, "warm restart answers from the snapshot");
    let doc = body_json(&resp.body);
    assert_eq!(doc["cached"], true);
    let id2 = doc["id"].as_u64().unwrap();
    let (status, after) = result_bytes(&s, id2);
    assert_eq!(status, 200);
    assert_eq!(after, before, "snapshot preserved the exact bytes");
    assert_eq!(s.executed(), 0);
}

#[test]
fn chaos_panics_are_retried_to_the_fault_free_document() {
    // Find a seed whose plan kills this job's first attempt — the
    // decision is a pure function of (seed, key, attempt), so the probe
    // instance predicts the server instance exactly.
    let body = submit_body("verify", ", \"k\": 4");
    let parsed: Value = serde_json::from_str(&body).unwrap();
    let key = JobRequest::from_json(&parsed).unwrap().cache_key();
    let seed = (0..1024u64)
        .find(|&seed| ServeChaos::from_seed(seed).should_panic(&key, 0))
        .expect("some seed panics the first attempt");

    let s = state_with(ServeConfig {
        threads: 1,
        chaos: Some(seed),
        retries: 4,
        backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    });
    let resp = s.handle(&request("POST", "/v1/jobs", &body));
    assert_eq!(resp.status, 202);
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(
        await_job(&s, id),
        "done",
        "retries outlast the chaos budget"
    );
    let status = body_json(
        &s.handle(&request("GET", &format!("/v1/jobs/{id}"), ""))
            .body,
    );
    assert!(
        status["attempts"].as_u64().unwrap() >= 2,
        "at least one injected panic was retried: {status}"
    );
    let (code, bytes) = result_bytes(&s, id);
    assert_eq!(code, 200);
    assert_eq!(
        String::from_utf8(bytes).unwrap(),
        cli_document(4),
        "a chaos-retried job serves the fault-free bytes"
    );
}

#[test]
fn a_shed_storm_loses_no_accepted_job() {
    let s = state_with(ServeConfig {
        threads: 2,
        caps: PendingCaps {
            verify: 2,
            sweep: 1,
            synthesize: 1,
        },
        ..ServeConfig::default()
    });
    // Saturate the verify queue by hand, then flood: every submit sheds
    // with a structured 429, and none of them ever reaches the table.
    s.admission().admit(JobKind::Verify).unwrap();
    s.admission().admit(JobKind::Verify).unwrap();
    for k in 3..=8 {
        let resp = s.handle(&request(
            "POST",
            "/v1/jobs",
            &submit_body("verify", &format!(", \"k\": {k}")),
        ));
        assert_eq!(resp.status, 429, "k={k}");
        assert_eq!(body_json(&resp.body)["code"], "queue_full");
        assert!(resp.headers.iter().any(|(n, _)| n == "retry-after"));
    }
    let metrics = body_json(&s.handle(&request("GET", "/v1/metrics", "")).body);
    assert!(
        metrics["counters"]["serve/shed"].as_u64().unwrap() >= 6,
        "{metrics}"
    );
    assert_eq!(s.executed(), 0, "shed traffic never reached the pool");

    // Pressure clears: the same flood is accepted, and every accepted
    // job reaches a terminal, correct state — no accepted job is lost.
    s.admission().release(JobKind::Verify);
    s.admission().release(JobKind::Verify);
    let ids: Vec<(usize, u64)> = (3..=8)
        .map(|k| {
            // The flood outruns the pool: a 429 here just means the
            // earlier accepted jobs have not released their slots yet.
            // Honor the Retry-After contract (bounded) — the property
            // under test is that *accepted* jobs are never lost.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let resp = s.handle(&request(
                    "POST",
                    "/v1/jobs",
                    &submit_body("verify", &format!(", \"k\": {k}")),
                ));
                match resp.status {
                    200 | 202 => break (k, body_json(&resp.body)["id"].as_u64().unwrap()),
                    429 if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    other => panic!("k={k}: {other}"),
                }
            }
        })
        .collect();
    for (k, id) in ids {
        assert_eq!(await_job(&s, id), "done", "k={k}");
        let (status, bytes) = result_bytes(&s, id);
        assert_eq!(status, 200);
        assert_eq!(String::from_utf8(bytes).unwrap(), cli_document(k));
    }
    // Occupancy fully drained once the storm settles.
    let ready = body_json(&s.handle(&request("GET", "/v1/readyz", "")).body);
    assert_eq!(ready["pending"]["verify"], 0u64);
}

// ---- property: journal replay under arbitrary truncation -----------------

/// One frame of the synthetic crash journal plus what it does to the
/// expected job table.
enum Ev {
    Header,
    Submitted(u64),
    Terminal(u64, &'static str),
}

/// A realistic interleaved journal: submits and terminals mixed, job 4
/// never finishing. Returns the wire bytes and, per frame, its end
/// offset and its event.
fn synthetic_journal() -> (Vec<u8>, Vec<(usize, Ev)>) {
    let frames = vec![
        (json!({"ev": "serve", "version": 1}), Ev::Header),
        (
            json!({"ev": "submitted", "id": 1, "kind": "verify", "key": "key-1", "request": {"kind": "verify", "k": 3}}),
            Ev::Submitted(1),
        ),
        (
            json!({"ev": "submitted", "id": 2, "kind": "sweep", "key": "key-2", "request": {"kind": "sweep", "k": 2}}),
            Ev::Submitted(2),
        ),
        (
            json!({"ev": "done", "id": 1, "exit_code": 0, "body": "doc-1"}),
            Ev::Terminal(1, "done"),
        ),
        (
            json!({"ev": "submitted", "id": 3, "kind": "synthesize", "key": "key-3", "request": {"kind": "synthesize"}}),
            Ev::Submitted(3),
        ),
        (
            json!({"ev": "failed", "id": 2, "status": 500, "message": "job panicked"}),
            Ev::Terminal(2, "failed"),
        ),
        (
            json!({"ev": "submitted", "id": 4, "kind": "verify", "key": "key-4", "request": {"kind": "verify", "k": 4}}),
            Ev::Submitted(4),
        ),
        (
            json!({"ev": "timed_out", "id": 3, "partial": "rows…"}),
            Ev::Terminal(3, "timed_out"),
        ),
    ];
    let mut wire = Vec::new();
    let mut events = Vec::new();
    for (value, ev) in frames {
        wire.extend_from_slice(frame_event(&value).as_bytes());
        events.push((wire.len(), ev));
    }
    (wire, events)
}

proptest! {
    /// Truncating the journal at *any* byte offset, replay recovers
    /// exactly the frames that fully survived: every completed result in
    /// the replay matches a terminal frame inside the valid prefix (none
    /// invented, none duplicated), and the re-enqueue set is exactly the
    /// submitted-but-not-terminal jobs of that prefix.
    #[test]
    fn truncated_replay_reenqueues_exactly_the_non_terminal_jobs(cut in 0usize..4096) {
        let (wire, events) = synthetic_journal();
        let cut = cut.min(wire.len());
        let path = tmp(&format!("truncated-{cut}.jsonl"));
        std::fs::write(&path, &wire[..cut]).unwrap();

        let replayed = replay(&path).expect("truncation is never a replay error");
        let _ = std::fs::remove_file(&path);

        // The valid prefix is the last whole frame at or before the cut.
        let expected_valid = events
            .iter()
            .map(|(end, _)| *end)
            .filter(|end| *end <= cut)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(replayed.valid_len as usize, expected_valid);

        // Fold the surviving frames into the expected table.
        let mut submitted: Vec<u64> = Vec::new();
        let mut terminal: Vec<(u64, &str)> = Vec::new();
        for (end, ev) in &events {
            if *end > expected_valid {
                break;
            }
            match ev {
                Ev::Header => {}
                Ev::Submitted(id) => submitted.push(*id),
                Ev::Terminal(id, label) => terminal.push((*id, label)),
            }
        }

        // Exactly the surviving submits are known — ids are unique, so a
        // completed result can never appear twice.
        let mut known: Vec<u64> = replayed.jobs.keys().copied().collect();
        known.sort_unstable();
        prop_assert_eq!(known, submitted.clone());

        // Terminal states match the surviving terminal frames 1:1.
        for &(id, label) in &terminal {
            let job = &replayed.jobs[&id];
            let got = match &job.terminal {
                Some(selfstab_serve::ReplayedTerminal::Done(_)) => "done",
                Some(selfstab_serve::ReplayedTerminal::Failed { .. }) => "failed",
                Some(selfstab_serve::ReplayedTerminal::TimedOut { .. }) => "timed_out",
                None => "pending",
            };
            prop_assert_eq!(got, label);
        }

        // And the re-enqueue set is exactly submitted minus terminal.
        let expected_pending: Vec<u64> = submitted
            .iter()
            .copied()
            .filter(|id| terminal.iter().all(|(t, _)| t != id))
            .collect();
        let pending: Vec<u64> = replayed.non_terminal().map(|j| j.id).collect();
        prop_assert_eq!(pending, expected_pending);

        // next_id never collides with a journaled submit.
        let max_submitted = submitted.iter().copied().max().unwrap_or(0);
        prop_assert!(replayed.next_id > max_submitted || submitted.is_empty());
    }
}

//! End-to-end tests of the HTTP verification service.
//!
//! Most tests drive the router in-process through [`ServeState::handle`]
//! — the exact code path a socket request takes after parsing — because
//! that keeps them fast and deterministic. A second group opens real
//! `TcpStream`s against a bound [`Server`] to cover the transport
//! concerns (torn requests, oversized bodies, pipelining, drain).

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use selfstab_global::{check::ConvergenceReport, EngineConfig, RingInstance};
use selfstab_protocol::file::parse_protocol_file;
use selfstab_serve::http::Request;
use selfstab_serve::{render, PendingCaps, ServeConfig, ServeState, Server};
use serde_json::Value;

const AGREEMENT: &str = "\
protocol agreement
domain x { 0 1 }
locality unidirectional
legit x[r] == x[r-1]
action x[r-1] == 1 && x[r] == 0 -> x[r] := 1
";

fn state() -> Arc<ServeState> {
    state_with(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    })
}

fn state_with(config: ServeConfig) -> Arc<ServeState> {
    ServeState::new(&config).expect("state builds")
}

fn request(method: &str, path: &str, body: &str) -> Request {
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query: query.to_owned(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
        keep_alive: true,
    }
}

fn submit_body(kind: &str, extra: &str) -> String {
    let spec = Value::String(AGREEMENT.to_owned());
    format!("{{\"kind\": \"{kind}\", \"spec\": {spec}{extra}}}")
}

fn body_json(body: &[u8]) -> Value {
    serde_json::from_str(std::str::from_utf8(body).expect("response body is UTF-8"))
        .expect("response body is JSON")
}

/// Polls `/v1/jobs/:id` until the job leaves queued/running.
fn await_job(state: &Arc<ServeState>, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = state.handle(&request("GET", &format!("/v1/jobs/{id}"), ""));
        assert_eq!(resp.status, 200);
        let status = body_json(&resp.body)["status"].as_str().unwrap().to_owned();
        if status != "queued" && status != "running" {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} never settled");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The `check --json` bytes the CLI would print for this spec at `k`.
fn cli_document(k: usize) -> String {
    let protocol = parse_protocol_file(AGREEMENT).unwrap();
    let ring = RingInstance::symmetric(&protocol, k).unwrap();
    let report = ConvergenceReport::check_with(&ring, &EngineConfig::sequential());
    render::check_document(vec![render::convergence_report(&report)])
}

#[test]
fn healthz_and_metrics_respond() {
    let s = state();
    let resp = s.handle(&request("GET", "/v1/healthz", ""));
    assert_eq!(resp.status, 200);
    assert_eq!(body_json(&resp.body)["status"], "ok");
    let resp = s.handle(&request("GET", "/v1/metrics", ""));
    assert_eq!(resp.status, 200);
    assert!(!body_json(&resp.body)["counters"].is_null());
}

#[test]
fn verify_round_trip_is_byte_identical_to_cli_json() {
    let s = state();
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("verify", ", \"k\": 4"),
    ));
    assert_eq!(
        resp.status,
        202,
        "{:?}",
        String::from_utf8_lossy(&resp.body)
    );
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "done");

    let resp = s.handle(&request("GET", &format!("/v1/jobs/{id}/result"), ""));
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.headers
            .iter()
            .find(|(n, _)| n == "x-selfstab-exit-code")
            .map(|(_, v)| v.as_str()),
        Some("0")
    );
    assert_eq!(String::from_utf8(resp.body).unwrap(), cli_document(4));

    // The status document carries the phase breakdown.
    let status = s.handle(&request("GET", &format!("/v1/jobs/{id}"), ""));
    let doc = body_json(&status.body);
    assert!(doc["phases_us"]["fused_scan"].as_u64().is_some(), "{doc}");
}

#[test]
fn repeated_submit_is_served_from_cache_without_pool_work() {
    let s = state();
    let body = submit_body("verify", ", \"k\": 4");
    let first = s.handle(&request("POST", "/v1/jobs", &body));
    assert_eq!(first.status, 202);
    let id = body_json(&first.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "done");
    let executed_before = s.executed();
    assert_eq!(executed_before, 1);
    let stats = body_json(&s.handle(&request("GET", "/v1/cache/stats", "")).body);
    let hits_before = stats["hits"].as_u64().unwrap();

    // Identical spec modulo whitespace/comments → same content address.
    let restyled = format!(
        "# resubmitted\n{}",
        AGREEMENT.replace("action", "   action")
    );
    let body2 = format!(
        "{{\"kind\": \"verify\", \"k\": 4, \"spec\": {}}}",
        Value::String(restyled)
    );
    let second = s.handle(&request("POST", "/v1/jobs", &body2));
    assert_eq!(second.status, 200, "cache hits answer immediately");
    let doc = body_json(&second.body);
    assert_eq!(doc["cached"], true);
    let id2 = doc["id"].as_u64().unwrap();

    // Hit counter moved; the pool executed nothing new.
    let stats = body_json(&s.handle(&request("GET", "/v1/cache/stats", "")).body);
    assert_eq!(stats["hits"].as_u64().unwrap(), hits_before + 1);
    assert_eq!(s.executed(), executed_before);

    // And the served document is the same bytes as the computed one.
    let r1 = s.handle(&request("GET", &format!("/v1/jobs/{id}/result"), ""));
    let r2 = s.handle(&request("GET", &format!("/v1/jobs/{id2}/result"), ""));
    assert_eq!(r1.body, r2.body);
    assert_eq!(String::from_utf8(r2.body).unwrap(), cli_document(4));
}

#[test]
fn concurrent_identical_submits_coalesce_to_one_pool_job() {
    let s = state();
    let body = submit_body("sweep", ", \"k\": 2, \"to\": 9");
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                let body = body.clone();
                scope.spawn(move || {
                    let resp = s.handle(&request("POST", "/v1/jobs", &body));
                    assert!(resp.status == 200 || resp.status == 202, "{}", resp.status);
                    body_json(&resp.body)["id"].as_u64().unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Every submit resolved to a job; wait for each named job to settle.
    for &id in &ids {
        assert_eq!(await_job(&s, id), "done");
    }
    assert_eq!(s.executed(), 1, "single-flight: one pool job for 8 clients");
    let first = s.handle(&request("GET", &format!("/v1/jobs/{}/result", ids[0],), ""));
    assert_eq!(first.status, 200);
    for &id in &ids[1..] {
        let resp = s.handle(&request("GET", &format!("/v1/jobs/{id}/result"), ""));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, first.body, "byte-identical across clients");
    }
}

#[test]
fn submit_errors_are_structured() {
    let s = state();
    // Malformed JSON → 400 with an error field.
    let resp = s.handle(&request("POST", "/v1/jobs", "{not json"));
    assert_eq!(resp.status, 400);
    assert!(!body_json(&resp.body)["error"].is_null());
    // Well-formed JSON, unparsable spec → 422.
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        "{\"kind\": \"verify\", \"k\": 3, \"spec\": \"garbage\"}",
    ));
    assert_eq!(resp.status, 422);
    assert!(body_json(&resp.body)["error"]
        .as_str()
        .unwrap()
        .contains("does not parse"));
    // Over-budget K is refused at submit, before any queueing.
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("verify", ", \"k\": 64"),
    ));
    assert_eq!(resp.status, 422);
    assert_eq!(s.executed(), 0);
}

#[test]
fn unknown_routes_jobs_and_methods() {
    let s = state();
    assert_eq!(s.handle(&request("GET", "/nope", "")).status, 404);
    assert_eq!(s.handle(&request("GET", "/v1/jobs/999", "")).status, 404);
    assert_eq!(
        s.handle(&request("GET", "/v1/jobs/999/result", "")).status,
        404
    );
    assert_eq!(s.handle(&request("DELETE", "/v1/healthz", "")).status, 405);
    assert_eq!(s.handle(&request("GET", "/v1/jobs", "")).status, 405);
}

#[test]
fn expired_deadline_times_out_with_partial_rows() {
    let s = state();
    // timeout_ms 0: the deadline passes before the job is dequeued, so
    // the scan aborts at its first cancel poll.
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("sweep", ", \"k\": 2, \"to\": 10, \"timeout_ms\": 0"),
    ));
    assert_eq!(resp.status, 202);
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "timed_out");
    let resp = s.handle(&request("GET", &format!("/v1/jobs/{id}/result"), ""));
    assert_eq!(resp.status, 504);
    let doc = body_json(&resp.body);
    assert_eq!(doc["partial"], true);
    assert!(doc["rows"].as_array().is_some());
    // A timed-out result is never cached: resubmitting without the
    // deadline computes fresh.
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("sweep", ", \"k\": 2, \"to\": 10"),
    ));
    assert_eq!(resp.status, 202, "no stale in-flight reservation");
}

#[test]
fn synthesize_jobs_complete_with_solutions() {
    let s = state();
    let resp = s.handle(&request("POST", "/v1/jobs", &submit_body("synthesize", "")));
    assert_eq!(resp.status, 202);
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "done");
    let resp = s.handle(&request("GET", &format!("/v1/jobs/{id}/result"), ""));
    assert_eq!(resp.status, 200);
    let doc = body_json(&resp.body);
    assert_eq!(doc["protocol"], "agreement");
    assert!(!doc["solutions"].as_array().unwrap().is_empty());
}

#[test]
fn draining_state_refuses_submits_with_structured_retry_after() {
    let s = state();
    s.begin_drain();
    let resp = s.handle(&request("GET", "/v1/healthz", ""));
    assert_eq!(resp.status, 200, "liveness stays 200 while draining");
    assert_eq!(body_json(&resp.body)["status"], "draining");
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("verify", ", \"k\": 3"),
    ));
    assert_eq!(resp.status, 503);
    let doc = body_json(&resp.body);
    assert_eq!(doc["code"], "draining", "{doc}");
    assert!(!doc["error"].is_null());
    assert!(
        resp.headers.iter().any(|(n, _)| n == "retry-after"),
        "503 drain carries Retry-After"
    );
}

#[test]
fn readyz_reports_ready_saturated_and_draining() {
    let s = state();
    let resp = s.handle(&request("GET", "/v1/readyz", ""));
    assert_eq!(resp.status, 200);
    let doc = body_json(&resp.body);
    assert_eq!(doc["status"], "ready");
    assert_eq!(doc["shed_level"], 0u64);
    assert_eq!(doc["pending"]["verify"], 0u64);

    s.admission().force_shed_level(2);
    let resp = s.handle(&request("GET", "/v1/readyz", ""));
    assert_eq!(resp.status, 503);
    let doc = body_json(&resp.body);
    assert_eq!(doc["status"], "saturated");
    assert_eq!(doc["shed_level"], 2u64);
    let shedding: Vec<&str> = doc["shedding"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    assert_eq!(shedding, ["synthesize", "sweep"]);
    s.admission().force_shed_level(0);

    s.begin_drain();
    let resp = s.handle(&request("GET", "/v1/readyz", ""));
    assert_eq!(resp.status, 503);
    assert_eq!(body_json(&resp.body)["status"], "draining");
}

#[test]
fn full_admission_queue_sheds_with_429_and_retry_after() {
    // A zero synthesize cap makes the queue-full path deterministic.
    let s = state_with(ServeConfig {
        caps: PendingCaps {
            verify: 256,
            sweep: 64,
            synthesize: 0,
        },
        ..ServeConfig::default()
    });
    let resp = s.handle(&request("POST", "/v1/jobs", &submit_body("synthesize", "")));
    assert_eq!(resp.status, 429);
    let doc = body_json(&resp.body);
    assert_eq!(doc["code"], "queue_full", "{doc}");
    assert!(doc["error"].as_str().unwrap().contains("synthesize"));
    assert!(
        resp.headers.iter().any(|(n, _)| n == "retry-after"),
        "429 carries Retry-After"
    );
    assert_eq!(s.executed(), 0, "shed traffic never reaches the pool");
    // Cheaper kinds are untouched by the synthesize cap.
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("verify", ", \"k\": 3"),
    ));
    assert_eq!(resp.status, 202);
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "done");
}

#[test]
fn memory_pressure_sheds_expensive_kinds_first() {
    let s = state();
    s.admission().force_shed_level(1);
    let resp = s.handle(&request("POST", "/v1/jobs", &submit_body("synthesize", "")));
    assert_eq!(resp.status, 429);
    assert_eq!(body_json(&resp.body)["code"], "memory_pressure");
    // Sweep and verify still flow at level 1.
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("verify", ", \"k\": 3"),
    ));
    assert_eq!(resp.status, 202);
    let id = body_json(&resp.body)["id"].as_u64().unwrap();
    assert_eq!(await_job(&s, id), "done");

    s.admission().force_shed_level(3);
    let resp = s.handle(&request(
        "POST",
        "/v1/jobs",
        &submit_body("verify", ", \"k\": 4"),
    ));
    assert_eq!(resp.status, 429);
    assert_eq!(body_json(&resp.body)["code"], "memory_pressure");
    s.admission().force_shed_level(0);
    // Rejections released their admission slots: occupancy drained to 0.
    let doc = body_json(&s.handle(&request("GET", "/v1/readyz", "")).body);
    assert_eq!(doc["pending"]["verify"], 0u64);
    assert_eq!(doc["pending"]["synthesize"], 0u64);
}

// ---- transport-level tests over real sockets -----------------------------

fn spawn_server() -> (
    std::net::SocketAddr,
    Arc<ServeState>,
    std::thread::JoinHandle<()>,
) {
    spawn_server_with(ServeConfig {
        port: 0,
        threads: 1,
        ..ServeConfig::default()
    })
}

fn spawn_server_with(
    config: ServeConfig,
) -> (
    std::net::SocketAddr,
    Arc<ServeState>,
    std::thread::JoinHandle<()>,
) {
    let server = Server::bind(&config).expect("bind an ephemeral port");
    let addr = server.local_addr().unwrap();
    let state = server.state();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, state, handle)
}

fn talk(addr: std::net::SocketAddr, wire: &[u8]) -> String {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(wire).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn socket_requests_route_and_pipelined_requests_each_answer() {
    let (addr, state, handle) = spawn_server();
    let one = talk(addr, b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(one.starts_with("HTTP/1.1 200 OK\r\n"), "{one}");
    // Two pipelined requests in one segment → two responses in order.
    let two = talk(
        addr,
        b"GET /v1/healthz HTTP/1.1\r\n\r\nGET /v1/cache/stats HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(two.matches("HTTP/1.1 200 OK\r\n").count(), 2, "{two}");
    assert!(two.contains("budget_bytes"), "{two}");
    state.begin_drain();
    handle.join().unwrap();
}

#[test]
fn socket_rejects_malformed_oversized_and_torn_requests() {
    let (addr, state, handle) = spawn_server();
    // Malformed head → 400 and close, no panic.
    let resp = talk(addr, b"WHAT\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
    // Declared body over the limit → 413.
    let resp = talk(
        addr,
        format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            64 * 1024 * 1024
        )
        .as_bytes(),
    );
    assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");
    // Torn mid-body (half-closed socket) → 408 and close.
    let resp = talk(
        addr,
        b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 400\r\n\r\n{\"kind\":",
    );
    assert!(resp.starts_with("HTTP/1.1 408 "), "{resp}");
    assert!(resp.contains("request_timeout"), "{resp}");
    // Malformed JSON body on a complete request → structured 400.
    let body = "{broken";
    let resp = talk(
        addr,
        format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
    assert!(resp.contains("invalid JSON"), "{resp}");
    // The server survived all of it.
    let resp = talk(addr, b"GET /v1/healthz HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
    state.begin_drain();
    handle.join().unwrap();
}

/// The slow-loris trio: a header dribble, a stalled body, and a
/// half-closed socket each get a `408` within the connection deadlines
/// and free their worker (the server keeps answering afterwards).
#[test]
fn slow_clients_get_408_and_free_their_worker() {
    use std::io::{Read, Write};
    let (addr, state, handle) = spawn_server_with(ServeConfig {
        port: 0,
        threads: 1,
        idle_timeout: Duration::from_millis(150),
        request_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    });

    // 1. Header dribble: a few bytes of request head, then silence.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /v1/hea").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 408 "), "dribbled head: {out}");

    // 2. Stalled body: complete head promising bytes that never arrive,
    //    socket held open.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 64\r\n\r\n{\"ki")
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 408 "), "stalled body: {out}");
    assert!(out.contains("request_timeout"), "{out}");

    // 3. Half-closed socket mid-body: EOF before the declared length.
    let out = talk(
        addr,
        b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 64\r\n\r\n{\"ki",
    );
    assert!(out.starts_with("HTTP/1.1 408 "), "half-closed: {out}");

    // Each 408 freed the worker: a healthy request still answers.
    let resp = talk(addr, b"GET /v1/healthz HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
    state.begin_drain();
    handle.join().unwrap();
}

#[test]
fn drain_stops_the_accept_loop() {
    let (addr, state, handle) = spawn_server();
    assert!(talk(addr, b"GET /v1/healthz HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 200"));
    state.begin_drain();
    handle.join().unwrap();
    // The listener is gone: connecting now fails (or is refused on read).
    let gone = TcpStream::connect(addr);
    if let Ok(mut stream) = gone {
        use std::io::{Read, Write};
        let _ = stream.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n");
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert_eq!(out, "", "no handler behind a drained listener");
    }
}

#[test]
fn busy_port_is_a_bind_error_not_a_panic() {
    let first = Server::bind(&ServeConfig {
        port: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let port = first.local_addr().unwrap().port();
    let second = Server::bind(&ServeConfig {
        port,
        ..ServeConfig::default()
    });
    assert!(second.is_err(), "second bind on {port} must fail cleanly");
}

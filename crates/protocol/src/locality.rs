//! Read localities: the neighbor window of the representative process.

/// The read locality of the representative process `P_r` on a ring.
///
/// `P_r` reads the owned variables of its `left` predecessors and `right`
/// successors, plus its own: `R_r = {x_{r-left}, …, x_r, …, x_{r+right}}`,
/// and writes only `x_r` (`W_r = {x_r} ⊆ R_r`, as required by the paper).
///
/// * `Locality::unidirectional()` — `(1, 0)`: the standard unidirectional
///   ring where `P_r` reads its predecessor (agreement, coloring,
///   sum-not-two).
/// * `Locality::bidirectional()` — `(1, 1)`: maximal matching.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::Locality;
///
/// let l = Locality::bidirectional();
/// assert_eq!(l.window_width(), 3);
/// assert_eq!(l.center(), 1);
/// assert_eq!(l.overlap(), 2); // |R_r ∩ R_{r+1}|
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Locality {
    left: usize,
    right: usize,
}

impl Locality {
    /// Maximum span on either side, keeping window encodings compact.
    pub const MAX_SPAN: usize = 4;

    /// Creates a locality reading `left` predecessors and `right` successors.
    ///
    /// # Panics
    ///
    /// Panics if either span exceeds [`Locality::MAX_SPAN`].
    pub fn new(left: usize, right: usize) -> Self {
        assert!(
            left <= Self::MAX_SPAN && right <= Self::MAX_SPAN,
            "locality spans limited to {}",
            Self::MAX_SPAN
        );
        Locality { left, right }
    }

    /// The unidirectional-ring locality `(1, 0)`: reads `x_{r-1}` and `x_r`.
    pub fn unidirectional() -> Self {
        Locality::new(1, 0)
    }

    /// The bidirectional-ring locality `(1, 1)`: reads `x_{r-1}`, `x_r`,
    /// `x_{r+1}`.
    pub fn bidirectional() -> Self {
        Locality::new(1, 1)
    }

    /// Number of predecessors read.
    pub fn left(&self) -> usize {
        self.left
    }

    /// Number of successors read.
    pub fn right(&self) -> usize {
        self.right
    }

    /// Width of the read window (`left + 1 + right`).
    pub fn window_width(&self) -> usize {
        self.left + 1 + self.right
    }

    /// Index of the owned variable `x_r` within the window.
    pub fn center(&self) -> usize {
        self.left
    }

    /// Size of the overlap `R_r ∩ R_{r+1}` between the windows of a process
    /// and its right successor (`left + right`).
    ///
    /// The right-continuation relation of Definition 4.1 requires the last
    /// `overlap()` window entries of `P_r`'s local state to equal the first
    /// `overlap()` entries of `P_{r+1}`'s.
    pub fn overlap(&self) -> usize {
        self.left + self.right
    }

    /// Converts a ring offset relative to `r` (e.g. `-1` for `x_{r-1}`) into
    /// a window index, or `None` if outside the window.
    pub fn window_index(&self, offset: isize) -> Option<usize> {
        let idx = offset + self.left as isize;
        if (0..self.window_width() as isize).contains(&idx) {
            Some(idx as usize)
        } else {
            None
        }
    }

    /// The ring offset of window index `idx` relative to `r`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the window.
    pub fn offset_of(&self, idx: usize) -> isize {
        assert!(idx < self.window_width(), "window index out of range");
        idx as isize - self.left as isize
    }
}

impl Default for Locality {
    /// Defaults to the unidirectional ring.
    fn default() -> Self {
        Locality::unidirectional()
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(left={}, right={})", self.left, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unidirectional_geometry() {
        let l = Locality::unidirectional();
        assert_eq!(l.window_width(), 2);
        assert_eq!(l.center(), 1);
        assert_eq!(l.overlap(), 1);
        assert_eq!(l.window_index(-1), Some(0));
        assert_eq!(l.window_index(0), Some(1));
        assert_eq!(l.window_index(1), None);
    }

    #[test]
    fn bidirectional_geometry() {
        let l = Locality::bidirectional();
        assert_eq!(l.window_index(-1), Some(0));
        assert_eq!(l.window_index(0), Some(1));
        assert_eq!(l.window_index(1), Some(2));
        assert_eq!(l.window_index(2), None);
        assert_eq!(l.offset_of(0), -1);
        assert_eq!(l.offset_of(2), 1);
    }

    #[test]
    fn wide_window() {
        let l = Locality::new(2, 1);
        assert_eq!(l.window_width(), 4);
        assert_eq!(l.center(), 2);
        assert_eq!(l.overlap(), 3);
        assert_eq!(l.window_index(-2), Some(0));
    }

    #[test]
    #[should_panic(expected = "locality spans limited")]
    fn span_limit() {
        Locality::new(5, 0);
    }
}

//! Error types for protocol construction and the guarded-command DSL.

use std::fmt;

/// Errors produced while building protocols or parsing guarded commands.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The DSL input failed to tokenize or parse.
    Parse {
        /// Byte offset in the input where the problem was detected.
        position: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A variable reference used an unknown name or an offset outside the
    /// declared locality window.
    BadVariable {
        /// The offending reference, e.g. `x[r+2]`.
        reference: String,
        /// Why the reference is invalid.
        message: String,
    },
    /// A named domain value does not exist in the protocol's domain.
    UnknownValue {
        /// The name that failed to resolve.
        name: String,
        /// The domain's variable name.
        domain: String,
    },
    /// An expression evaluated to a type or value outside what its context
    /// allows (e.g. a guard that is not boolean, or an assignment outside the
    /// domain).
    Eval {
        /// Description of the failure.
        message: String,
    },
    /// The protocol under construction is structurally invalid.
    Invalid {
        /// Description of the failure.
        message: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            ProtocolError::BadVariable { reference, message } => {
                write!(f, "invalid variable reference `{reference}`: {message}")
            }
            ProtocolError::UnknownValue { name, domain } => {
                write!(f, "unknown value `{name}` for domain `{domain}`")
            }
            ProtocolError::Eval { message } => write!(f, "evaluation error: {message}"),
            ProtocolError::Invalid { message } => write!(f, "invalid protocol: {message}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::Parse {
            position: 4,
            message: "expected `->`".into(),
        };
        assert_eq!(e.to_string(), "parse error at byte 4: expected `->`");
        let e = ProtocolError::UnknownValue {
            name: "lefty".into(),
            domain: "m".into(),
        };
        assert!(e.to_string().contains("lefty"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_err(ProtocolError::Eval {
            message: "x".into(),
        });
    }
}

//! Finite variable domains with optional named values.

use crate::error::ProtocolError;

/// The value of a process variable: an index into its [`Domain`].
///
/// Domains in the paper's protocols are tiny (2–5 values), so a `u8` index is
/// ample and keeps local-state encodings compact.
pub type Value = u8;

/// A finite, named domain for the per-process variable `x_r`.
///
/// Every process of a parameterized protocol owns one variable over this
/// domain. Values are indices `0..size`; each may carry a human-readable
/// label (e.g. `left`/`right`/`self` for maximal matching), used both by the
/// guarded-command DSL and by pretty-printing.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::Domain;
///
/// let m = Domain::named("m", ["left", "right", "self"]);
/// assert_eq!(m.size(), 3);
/// assert_eq!(m.value_of("right"), Some(1));
/// assert_eq!(m.label(2), "self");
///
/// let x = Domain::numeric("x", 3);
/// assert_eq!(x.value_of("2"), Some(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Domain {
    variable: String,
    labels: Vec<String>,
}

impl Domain {
    /// Creates a domain with explicit value labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty, longer than 255, or contains duplicates.
    pub fn named<I, S>(variable: &str, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        assert!(!labels.is_empty(), "domain must have at least one value");
        assert!(
            labels.len() <= u8::MAX as usize,
            "domain too large for u8 values"
        );
        for (i, l) in labels.iter().enumerate() {
            assert!(!labels[..i].contains(l), "duplicate domain label `{l}`");
        }
        Domain {
            variable: variable.to_owned(),
            labels,
        }
    }

    /// Creates a numeric domain `{0, 1, ..., size-1}` with labels `"0"`,
    /// `"1"`, ….
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 255.
    pub fn numeric(variable: &str, size: usize) -> Self {
        assert!(size > 0, "domain must have at least one value");
        Domain::named(variable, (0..size).map(|v| v.to_string()))
    }

    /// The name of the per-process variable (e.g. `x` in `x[r-1]`).
    pub fn variable(&self) -> &str {
        &self.variable
    }

    /// Number of values in the domain.
    pub fn size(&self) -> usize {
        self.labels.len()
    }

    /// The label of value `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: Value) -> &str {
        &self.labels[v as usize]
    }

    /// Looks a value up by its label.
    pub fn value_of(&self, label: &str) -> Option<Value> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| i as Value)
    }

    /// Looks a value up by its label, producing a protocol error on failure.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownValue`] when the label is not in the
    /// domain.
    pub fn require(&self, label: &str) -> Result<Value, ProtocolError> {
        self.value_of(label)
            .ok_or_else(|| ProtocolError::UnknownValue {
                name: label.to_owned(),
                domain: self.variable.clone(),
            })
    }

    /// Iterates over all values of the domain.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.size()).map(|v| v as Value)
    }

    /// The shortest prefix of each label that no *other* label shares, in
    /// value order — `red`/`ready` compact to `red`/`rea`, not both to `r`.
    /// When a label is a full prefix of another (`a`/`ab`), no prefix of it
    /// is unique and the whole label is returned for that value.
    pub fn unique_prefixes(&self) -> Vec<String> {
        self.labels
            .iter()
            .map(|label| {
                let mut prefix = String::new();
                for c in label.chars() {
                    prefix.push(c);
                    let shared = self
                        .labels
                        .iter()
                        .any(|other| other != label && other.starts_with(&prefix));
                    if !shared {
                        break;
                    }
                }
                prefix
            })
            .collect()
    }

    /// Formats a slice of values compactly and unambiguously: when every
    /// shortest-unique prefix is a single character the prefixes are
    /// concatenated (the paper's `lls`-style notation); otherwise the
    /// prefixes are joined with `,` so colliding labels like `red`/`ready`
    /// stay distinguishable (`red,rea` rather than `rr`).
    pub fn format_values(&self, values: &[Value]) -> String {
        let prefixes = self.unique_prefixes();
        if prefixes.iter().all(|p| p.chars().count() == 1) {
            values
                .iter()
                .map(|&v| prefixes[v as usize].as_str())
                .collect()
        } else {
            values
                .iter()
                .map(|&v| prefixes[v as usize].as_str())
                .collect::<Vec<_>>()
                .join(",")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_lookup_roundtrip() {
        let d = Domain::named("m", ["left", "right", "self"]);
        for v in d.values() {
            assert_eq!(d.value_of(d.label(v)), Some(v));
        }
        assert_eq!(d.value_of("missing"), None);
    }

    #[test]
    fn numeric_labels() {
        let d = Domain::numeric("x", 4);
        assert_eq!(d.label(3), "3");
        assert_eq!(d.value_of("0"), Some(0));
        assert_eq!(d.values().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unique_prefixes_separate_colliding_labels() {
        // `red` and `ready` share the first two characters; first-letter
        // compaction would render both as `r`.
        let d = Domain::named("c", ["red", "ready", "green"]);
        assert_eq!(d.unique_prefixes(), vec!["red", "rea", "g"]);
        assert_eq!(d.format_values(&[0, 1, 2]), "red,rea,g");
    }

    #[test]
    fn unique_prefixes_fall_back_to_full_labels() {
        // `a` is a prefix of `ab`, so no proper prefix of it is unique.
        let d = Domain::named("c", ["a", "ab"]);
        assert_eq!(d.unique_prefixes(), vec!["a", "ab"]);
        assert_eq!(d.format_values(&[1, 0]), "ab,a");
    }

    #[test]
    fn format_values_concatenates_distinct_initials() {
        let d = Domain::named("m", ["left", "right", "self"]);
        assert_eq!(d.format_values(&[0, 2, 1]), "lsr");
        let n = Domain::numeric("x", 3);
        assert_eq!(n.format_values(&[2, 0, 1]), "201");
    }

    #[test]
    fn require_reports_domain_name() {
        let d = Domain::numeric("c", 2);
        let err = d.require("7").unwrap_err();
        assert!(err.to_string().contains('c'));
    }

    #[test]
    #[should_panic(expected = "duplicate domain label")]
    fn duplicate_labels_panic() {
        Domain::named("m", ["a", "a"]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_domain_panics() {
        Domain::named("m", Vec::<String>::new());
    }
}

//! The local state space of the representative process.

use crate::domain::{Domain, Value};
use crate::locality::Locality;

/// Identifier of a local state: a dense index into the local state space.
///
/// Local states are valuations of the read window; with domain size `d` and
/// window width `w` there are `d^w` of them, so a `u32` id is ample for the
/// small windows supported by [`Locality`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalStateId(pub u32);

impl LocalStateId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LocalStateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Codec for local states: bijection between window valuations and
/// [`LocalStateId`]s.
///
/// The encoding is big-endian mixed radix with uniform radix `d` (the domain
/// size): the leftmost window entry (`x_{r-left}`) is the most significant
/// digit. Window entries are ordered `[x_{r-left}, …, x_r, …, x_{r+right}]`.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, LocalStateSpace};
///
/// let space = LocalStateSpace::new(&Domain::numeric("x", 3), Locality::bidirectional());
/// assert_eq!(space.len(), 27);
/// let id = space.encode(&[2, 0, 1]);
/// assert_eq!(space.decode(id), vec![2, 0, 1]);
/// assert_eq!(space.value_at(id, 1), 0);
/// let id2 = space.with_value(id, 1, 2);
/// assert_eq!(space.decode(id2), vec![2, 2, 1]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalStateSpace {
    domain_size: usize,
    width: usize,
}

impl LocalStateSpace {
    /// Creates the codec for the given domain and locality.
    ///
    /// # Panics
    ///
    /// Panics if `d^w` overflows `u32` (cannot happen for the localities and
    /// domain sizes this workspace supports, but checked defensively).
    pub fn new(domain: &Domain, locality: Locality) -> Self {
        let d = domain.size();
        let w = locality.window_width();
        let count = (d as u128).pow(w as u32);
        assert!(count <= u32::MAX as u128, "local state space too large");
        LocalStateSpace {
            domain_size: d,
            width: w,
        }
    }

    /// Number of local states (`d^w`).
    pub fn len(&self) -> usize {
        self.domain_size.pow(self.width as u32)
    }

    /// Returns `true` if the space is empty (never: domains are non-empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The domain size `d`.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// The window width `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encodes a window valuation.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width()` or any value is out of domain.
    pub fn encode(&self, values: &[Value]) -> LocalStateId {
        assert_eq!(values.len(), self.width, "window width mismatch");
        let mut id: u32 = 0;
        for &v in values {
            assert!((v as usize) < self.domain_size, "value {v} out of domain");
            id = id * self.domain_size as u32 + v as u32;
        }
        LocalStateId(id)
    }

    /// Decodes a local state into its window valuation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn decode(&self, id: LocalStateId) -> Vec<Value> {
        assert!(id.index() < self.len(), "local state id out of range");
        let mut values = vec![0; self.width];
        let mut rest = id.0;
        for slot in values.iter_mut().rev() {
            *slot = (rest % self.domain_size as u32) as Value;
            rest /= self.domain_size as u32;
        }
        values
    }

    /// The value at window index `pos` of local state `id` (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= width()` or `id` is out of range.
    pub fn value_at(&self, id: LocalStateId, pos: usize) -> Value {
        assert!(pos < self.width, "window index out of range");
        assert!(id.index() < self.len(), "local state id out of range");
        let shift = (self.width - 1 - pos) as u32;
        ((id.0 / (self.domain_size as u32).pow(shift)) % self.domain_size as u32) as Value
    }

    /// Returns `id` with the value at window index `pos` replaced by `v`.
    ///
    /// # Panics
    ///
    /// Panics if `pos`, `v`, or `id` is out of range.
    pub fn with_value(&self, id: LocalStateId, pos: usize, v: Value) -> LocalStateId {
        assert!((v as usize) < self.domain_size, "value {v} out of domain");
        let old = self.value_at(id, pos);
        let weight = (self.domain_size as u32).pow((self.width - 1 - pos) as u32);
        LocalStateId(id.0 - old as u32 * weight + v as u32 * weight)
    }

    /// Iterates over every local state id.
    pub fn ids(&self) -> impl Iterator<Item = LocalStateId> {
        (0..self.len() as u32).map(LocalStateId)
    }

    /// Tests the right-continuation relation of Definition 4.1: `b` is a
    /// right continuation of `a` iff the last `overlap` entries of `a`'s
    /// window equal the first `overlap` entries of `b`'s window.
    ///
    /// # Panics
    ///
    /// Panics if `overlap > width()`.
    pub fn is_right_continuation(&self, a: LocalStateId, b: LocalStateId, overlap: usize) -> bool {
        assert!(overlap <= self.width, "overlap exceeds window width");
        (0..overlap).all(|i| self.value_at(a, self.width - overlap + i) == self.value_at(b, i))
    }

    /// Formats a local state as its labelled window, e.g. `⟨left,self,right⟩`.
    pub fn format(&self, id: LocalStateId, domain: &Domain) -> String {
        let values = self.decode(id);
        let labels: Vec<&str> = values.iter().map(|&v| domain.label(v)).collect();
        format!("⟨{}⟩", labels.join(","))
    }

    /// Formats a local state as a compact window string, matching the
    /// paper's `lls`-style notation when labels have distinct initials and
    /// falling back to `,`-joined shortest-unique prefixes otherwise (see
    /// [`Domain::format_values`]).
    pub fn format_compact(&self, id: LocalStateId, domain: &Domain) -> String {
        domain.format_values(&self.decode(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space3() -> LocalStateSpace {
        LocalStateSpace::new(&Domain::numeric("x", 3), Locality::bidirectional())
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = space3();
        for id in s.ids() {
            assert_eq!(s.encode(&s.decode(id)), id);
        }
    }

    #[test]
    fn big_endian_order() {
        let s = space3();
        assert_eq!(s.encode(&[0, 0, 1]).0, 1);
        assert_eq!(s.encode(&[1, 0, 0]).0, 9);
    }

    #[test]
    fn value_at_matches_decode() {
        let s = space3();
        for id in s.ids() {
            let vals = s.decode(id);
            for (pos, &v) in vals.iter().enumerate() {
                assert_eq!(s.value_at(id, pos), v);
            }
        }
    }

    #[test]
    fn with_value_changes_one_position() {
        let s = space3();
        let id = s.encode(&[2, 1, 0]);
        let id2 = s.with_value(id, 1, 2);
        assert_eq!(s.decode(id2), vec![2, 2, 0]);
        assert_eq!(s.with_value(id, 1, 1), id);
    }

    #[test]
    fn right_continuation_unidirectional() {
        let s = LocalStateSpace::new(&Domain::numeric("x", 2), Locality::unidirectional());
        // windows [x_{r-1}, x_r]; overlap 1: last entry of a == first of b.
        let a = s.encode(&[0, 1]);
        let b = s.encode(&[1, 0]);
        let c = s.encode(&[0, 0]);
        assert!(s.is_right_continuation(a, b, 1));
        assert!(!s.is_right_continuation(a, c, 1));
        // self-continuation of [0,0]
        assert!(s.is_right_continuation(c, c, 1));
    }

    #[test]
    fn right_continuation_bidirectional() {
        let s = space3();
        // windows [x_{r-1}, x_r, x_{r+1}]; overlap 2.
        let a = s.encode(&[2, 0, 1]);
        let b = s.encode(&[0, 1, 2]);
        assert!(s.is_right_continuation(a, b, 2));
        let c = s.encode(&[1, 0, 2]);
        assert!(!s.is_right_continuation(a, c, 2));
    }

    #[test]
    fn formatting() {
        let d = Domain::named("m", ["left", "right", "self"]);
        let s = LocalStateSpace::new(&d, Locality::bidirectional());
        let id = s.encode(&[0, 0, 2]);
        assert_eq!(s.format(id, &d), "⟨left,left,self⟩");
        assert_eq!(s.format_compact(id, &d), "lls");
    }

    #[test]
    fn format_compact_uses_unique_prefixes_on_ambiguous_initials() {
        let d = Domain::named("m", ["alpha", "apex"]);
        let s = LocalStateSpace::new(&d, Locality::unidirectional());
        let id = s.encode(&[0, 1]);
        assert_eq!(s.format_compact(id, &d), "al,ap");
    }
}

//! Local state predicates (`LC_r` and friends).

use selfstab_graph::BitSet;

use crate::space::{LocalStateId, LocalStateSpace};

/// A predicate over the local state space of the representative process,
/// represented extensionally as a bit set.
///
/// The paper's legitimate-state predicates `I(K)` are *locally conjunctive*:
/// `I(K) = ∧_{r} LC_r` where each `LC_r` is a local predicate. This type
/// represents one such `LC_r` (and any other set of local states, e.g. the
/// local deadlocks `D_L^l`).
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, LocalPredicate, LocalStateSpace};
///
/// let d = Domain::numeric("x", 2);
/// let space = LocalStateSpace::new(&d, Locality::unidirectional());
/// // LC_r: x_r == x_{r-1}
/// let lc = LocalPredicate::from_fn(&space, |s, sp| sp.value_at(s, 0) == sp.value_at(s, 1));
/// assert_eq!(lc.len(), 2);
/// assert!(lc.holds(space.encode(&[1, 1])));
/// assert!(!lc.holds(space.encode(&[1, 0])));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalPredicate {
    set: BitSet,
}

impl LocalPredicate {
    /// The predicate that holds nowhere.
    pub fn none(space: &LocalStateSpace) -> Self {
        LocalPredicate {
            set: BitSet::new(space.len()),
        }
    }

    /// The predicate that holds everywhere.
    pub fn all(space: &LocalStateSpace) -> Self {
        LocalPredicate {
            set: BitSet::full(space.len()),
        }
    }

    /// Builds a predicate by evaluating `f` on every local state.
    pub fn from_fn<F>(space: &LocalStateSpace, mut f: F) -> Self
    where
        F: FnMut(LocalStateId, &LocalStateSpace) -> bool,
    {
        let mut set = BitSet::new(space.len());
        for id in space.ids() {
            if f(id, space) {
                set.insert(id.index());
            }
        }
        LocalPredicate { set }
    }

    /// Builds a predicate from an explicit set of states.
    pub fn from_states<I: IntoIterator<Item = LocalStateId>>(
        space: &LocalStateSpace,
        states: I,
    ) -> Self {
        LocalPredicate {
            set: BitSet::from_iter_with_capacity(
                space.len(),
                states.into_iter().map(LocalStateId::index),
            ),
        }
    }

    /// Returns `true` if the predicate holds at `id`.
    pub fn holds(&self, id: LocalStateId) -> bool {
        self.set.contains(id.index())
    }

    /// Number of satisfying local states.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Returns `true` if no local state satisfies the predicate.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The complement predicate (`¬LC_r`).
    pub fn negated(&self) -> LocalPredicate {
        let mut set = self.set.clone();
        set.complement();
        LocalPredicate { set }
    }

    /// Conjunction with another predicate.
    ///
    /// # Panics
    ///
    /// Panics if the two predicates are over different state spaces.
    pub fn and(&self, other: &LocalPredicate) -> LocalPredicate {
        let mut set = self.set.clone();
        set.intersect_with(&other.set);
        LocalPredicate { set }
    }

    /// Disjunction with another predicate.
    ///
    /// # Panics
    ///
    /// Panics if the two predicates are over different state spaces.
    pub fn or(&self, other: &LocalPredicate) -> LocalPredicate {
        let mut set = self.set.clone();
        set.union_with(&other.set);
        LocalPredicate { set }
    }

    /// Iterates over the satisfying local states.
    pub fn states(&self) -> impl Iterator<Item = LocalStateId> + '_ {
        self.set.iter().map(|i| LocalStateId(i as u32))
    }

    /// A view of the underlying bit set (vertex set for graph algorithms).
    pub fn as_bitset(&self) -> &BitSet {
        &self.set
    }
}

impl From<BitSet> for LocalPredicate {
    fn from(set: BitSet) -> Self {
        LocalPredicate { set }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::locality::Locality;

    fn space() -> LocalStateSpace {
        LocalStateSpace::new(&Domain::numeric("x", 2), Locality::unidirectional())
    }

    #[test]
    fn all_and_none() {
        let sp = space();
        assert_eq!(LocalPredicate::all(&sp).len(), 4);
        assert!(LocalPredicate::none(&sp).is_empty());
    }

    #[test]
    fn negation_partitions() {
        let sp = space();
        let eq = LocalPredicate::from_fn(&sp, |s, spc| spc.value_at(s, 0) == spc.value_at(s, 1));
        let ne = eq.negated();
        assert_eq!(eq.len() + ne.len(), sp.len());
        assert!(eq.and(&ne).is_empty());
        assert_eq!(eq.or(&ne).len(), sp.len());
    }

    #[test]
    fn from_states_and_iteration() {
        let sp = space();
        let p = LocalPredicate::from_states(&sp, [LocalStateId(0), LocalStateId(3)]);
        assert_eq!(
            p.states().collect::<Vec<_>>(),
            vec![LocalStateId(0), LocalStateId(3)]
        );
        assert!(p.holds(LocalStateId(3)));
        assert!(!p.holds(LocalStateId(1)));
    }
}

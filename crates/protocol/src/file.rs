//! The `.stab` protocol file format.
//!
//! A small line-oriented format bundling everything a parameterized ring
//! protocol needs — domain, locality, legitimate predicate, actions — so
//! protocols can live in files and be driven by the `selfstab` CLI:
//!
//! ```text
//! # Sum-not-two (Farahat & Ebnenasir, §6.2)
//! protocol sum-not-two
//! domain x { 0 1 2 }
//! locality unidirectional
//! legit x[r] + x[r-1] != 2
//!
//! action (x[r] + x[r-1] == 2) && (x[r] != 2) -> x[r] := (x[r] + 1) % 3
//! action (x[r] + x[r-1] == 2) && (x[r] == 2) -> x[r] := (x[r] - 1) % 3
//! ```
//!
//! Grammar (one declaration per line, `#` starts a comment):
//!
//! * `protocol <name>` — required first declaration;
//! * `domain <var> { <label> ... }` — the owned variable and its values;
//! * `locality unidirectional | bidirectional | (<left>, <right>)`;
//! * `legit <boolean expression>` — the local predicate `LC_r`;
//! * `action <guard> -> <var>[r] := <rhs> (| <rhs>)*` — zero or more.

use crate::domain::Domain;
use crate::error::ProtocolError;
use crate::locality::Locality;
use crate::protocol::{Protocol, ProtocolBuilder};

fn err(line_no: usize, message: impl Into<String>) -> ProtocolError {
    ProtocolError::Parse {
        position: line_no,
        message: format!("line {line_no}: {}", message.into()),
    }
}

/// Parses a `.stab` protocol definition from source text.
///
/// # Errors
///
/// Returns [`ProtocolError`] with a line-numbered message on any syntax or
/// semantic problem (missing declarations, unknown labels, expressions
/// outside the locality, empty `LC_r`, …).
///
/// # Examples
///
/// ```
/// use selfstab_protocol::file::parse_protocol_file;
///
/// let src = "
/// protocol agreement
/// domain x { 0 1 }
/// locality unidirectional
/// legit x[r] == x[r-1]
/// action x[r-1] == 1 && x[r] == 0 -> x[r] := 1
/// ";
/// let p = parse_protocol_file(src)?;
/// assert_eq!(p.name(), "agreement");
/// assert_eq!(p.transitions().count(), 1);
/// # Ok::<(), selfstab_protocol::ProtocolError>(())
/// ```
pub fn parse_protocol_file(source: &str) -> Result<Protocol, ProtocolError> {
    let mut name: Option<String> = None;
    let mut domain: Option<Domain> = None;
    let mut locality: Option<Locality> = None;
    let mut legit: Option<(usize, String)> = None;
    let mut actions: Vec<(usize, String)> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "protocol" => {
                if name.is_some() {
                    return Err(err(line_no, "duplicate `protocol` declaration"));
                }
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(err(line_no, "expected `protocol <name>`"));
                }
                name = Some(rest.to_owned());
            }
            "domain" => {
                if domain.is_some() {
                    return Err(err(line_no, "duplicate `domain` declaration"));
                }
                domain = Some(parse_domain(line_no, rest)?);
            }
            "locality" => {
                if locality.is_some() {
                    return Err(err(line_no, "duplicate `locality` declaration"));
                }
                locality = Some(parse_locality(line_no, rest)?);
            }
            "legit" => {
                if legit.is_some() {
                    return Err(err(line_no, "duplicate `legit` declaration"));
                }
                if rest.is_empty() {
                    return Err(err(line_no, "expected `legit <expression>`"));
                }
                legit = Some((line_no, rest.to_owned()));
            }
            "action" => {
                if rest.is_empty() {
                    return Err(err(line_no, "expected `action <guard> -> <assignment>`"));
                }
                actions.push((line_no, rest.to_owned()));
            }
            other => {
                return Err(err(
                    line_no,
                    format!("unknown declaration `{other}` (expected protocol/domain/locality/legit/action)"),
                ));
            }
        }
    }

    let name = name.ok_or_else(|| err(0, "missing `protocol <name>` declaration"))?;
    let domain = domain.ok_or_else(|| err(0, "missing `domain` declaration"))?;
    let locality = locality.unwrap_or_default();
    let (legit_line, legit_src) = legit.ok_or_else(|| err(0, "missing `legit` declaration"))?;

    let mut builder: ProtocolBuilder = Protocol::builder(&name, domain, locality);
    for (line_no, src) in &actions {
        builder = builder
            .action(src)
            .map_err(|e| err(*line_no, e.to_string()))?;
    }
    builder
        .legit(&legit_src)
        .map_err(|e| err(legit_line, e.to_string()))?
        .build()
}

fn parse_domain(line_no: usize, rest: &str) -> Result<Domain, ProtocolError> {
    // `<var> { <label> ... }`
    let open = rest
        .find('{')
        .ok_or_else(|| err(line_no, "expected `domain <var> { <labels> }`"))?;
    let close = rest
        .rfind('}')
        .filter(|&c| c > open)
        .ok_or_else(|| err(line_no, "missing closing `}` in domain"))?;
    let var = rest[..open].trim();
    if var.is_empty() || var.contains(char::is_whitespace) {
        return Err(err(line_no, "expected a single variable name before `{`"));
    }
    let labels: Vec<&str> = rest[open + 1..close].split_whitespace().collect();
    if labels.is_empty() {
        return Err(err(line_no, "domain must list at least one value"));
    }
    if labels.len() > u8::MAX as usize {
        return Err(err(line_no, "domain too large (max 255 values)"));
    }
    for (i, l) in labels.iter().enumerate() {
        if labels[..i].contains(l) {
            return Err(err(line_no, format!("duplicate domain label `{l}`")));
        }
    }
    Ok(Domain::named(var, labels))
}

fn parse_locality(line_no: usize, rest: &str) -> Result<Locality, ProtocolError> {
    match rest {
        "unidirectional" => Ok(Locality::unidirectional()),
        "bidirectional" => Ok(Locality::bidirectional()),
        other => {
            // `(<left>, <right>)`
            let inner = other
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| {
                    err(
                        line_no,
                        "expected `unidirectional`, `bidirectional`, or `(<left>, <right>)`",
                    )
                })?;
            let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return Err(err(line_no, "expected two comma-separated spans"));
            }
            let left: usize = parts[0]
                .parse()
                .map_err(|_| err(line_no, "left span must be a number"))?;
            let right: usize = parts[1]
                .parse()
                .map_err(|_| err(line_no, "right span must be a number"))?;
            if left > Locality::MAX_SPAN || right > Locality::MAX_SPAN {
                return Err(err(
                    line_no,
                    format!("locality spans limited to {}", Locality::MAX_SPAN),
                ));
            }
            Ok(Locality::new(left, right))
        }
    }
}

/// Renders a protocol back into the `.stab` format.
///
/// Uses the original action sources when available and the merged-guard
/// summary otherwise, so `parse(render(p))` defines the same protocol.
pub fn render_protocol_file(protocol: &Protocol) -> String {
    let mut out = String::new();
    out.push_str(&format!("protocol {}\n", protocol.name()));
    let labels: Vec<&str> = protocol
        .domain()
        .values()
        .map(|v| protocol.domain().label(v))
        .collect();
    out.push_str(&format!(
        "domain {} {{ {} }}\n",
        protocol.domain().variable(),
        labels.join(" ")
    ));
    let loc = protocol.locality();
    let loc_text = if loc == Locality::unidirectional() {
        "unidirectional".to_owned()
    } else if loc == Locality::bidirectional() {
        "bidirectional".to_owned()
    } else {
        format!("({}, {})", loc.left(), loc.right())
    };
    out.push_str(&format!("locality {loc_text}\n"));
    if protocol.legit_source().is_empty() {
        // Extensional fallback: enumerate the legitimate windows.
        let disjuncts: Vec<String> = protocol
            .legit()
            .states()
            .map(|id| {
                let vals = protocol.space().decode(id);
                let conj: Vec<String> = vals
                    .iter()
                    .enumerate()
                    .map(|(pos, &v)| {
                        let off = loc.offset_of(pos);
                        let var = match off {
                            0 => format!("{}[r]", protocol.domain().variable()),
                            o if o < 0 => format!("{}[r{o}]", protocol.domain().variable()),
                            o => format!("{}[r+{o}]", protocol.domain().variable()),
                        };
                        format!("{var} == {}", protocol.domain().label(v))
                    })
                    .collect();
                format!("({})", conj.join(" && "))
            })
            .collect();
        out.push_str(&format!("legit {}\n", disjuncts.join(" || ")));
    } else {
        out.push_str(&format!("legit {}\n", protocol.legit_source()));
    }
    out.push('\n');
    if protocol.actions().is_empty() {
        for line in crate::display::summarize_transitions(protocol) {
            out.push_str(&format!("action {line}\n"));
        }
    } else {
        for a in protocol.actions() {
            out.push_str(&format!("action {a}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUM_NOT_TWO: &str = "
# Sum-not-two (Farahat & Ebnenasir, §6.2)
protocol sum-not-two
domain x { 0 1 2 }
locality unidirectional
legit x[r] + x[r-1] != 2

action (x[r] + x[r-1] == 2) && (x[r] != 2) -> x[r] := (x[r] + 1) % 3
action (x[r] + x[r-1] == 2) && (x[r] == 2) -> x[r] := (x[r] - 1) % 3
";

    #[test]
    fn parses_complete_file() {
        let p = parse_protocol_file(SUM_NOT_TWO).unwrap();
        assert_eq!(p.name(), "sum-not-two");
        assert_eq!(p.domain().size(), 3);
        assert_eq!(p.locality(), Locality::unidirectional());
        assert_eq!(p.transition_count(), 3);
        assert_eq!(p.legit().len(), 6);
    }

    #[test]
    fn named_labels_and_bidirectional() {
        let src = "
protocol matching
domain m { left right self }
locality bidirectional
legit (m[r] == right && m[r+1] == left) || (m[r-1] == right && m[r] == left) || (m[r-1] == left && m[r] == self && m[r+1] == right)
action m[r-1] == left && m[r] != self && m[r+1] == right -> m[r] := self
";
        let p = parse_protocol_file(src).unwrap();
        assert_eq!(p.locality(), Locality::bidirectional());
        assert_eq!(p.legit().len(), 7);
        assert_eq!(p.transition_count(), 2);
    }

    #[test]
    fn explicit_span_locality() {
        let src = "
protocol wide
domain x { 0 1 }
locality (2, 1)
legit x[r] == x[r-1]
";
        let p = parse_protocol_file(src).unwrap();
        assert_eq!(p.locality(), Locality::new(2, 1));
    }

    #[test]
    fn missing_declarations_are_reported() {
        assert!(parse_protocol_file("domain x { 0 1 }\nlegit x[r] == 0")
            .unwrap_err()
            .to_string()
            .contains("protocol"));
        assert!(parse_protocol_file("protocol p\nlegit x[r] == 0")
            .unwrap_err()
            .to_string()
            .contains("domain"));
        assert!(parse_protocol_file("protocol p\ndomain x { 0 1 }")
            .unwrap_err()
            .to_string()
            .contains("legit"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "protocol p\ndomain x { 0 1 }\nlocality unidirectional\nlegit x[r] === 0";
        let e = parse_protocol_file(src).unwrap_err();
        assert!(e.to_string().contains("line 4"), "{e}");
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let src = "protocol p\nprotocol q\n";
        assert!(parse_protocol_file(src)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn unknown_keyword_rejected() {
        let e = parse_protocol_file("protocol p\nfoo bar\n").unwrap_err();
        assert!(e.to_string().contains("unknown declaration"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "
# header comment
protocol p   # trailing comment
domain x { 0 1 }

locality unidirectional
legit x[r] == x[r-1]
";
        assert!(parse_protocol_file(src).is_ok());
    }

    #[test]
    fn render_parse_roundtrip() {
        let p = parse_protocol_file(SUM_NOT_TWO).unwrap();
        let rendered = render_protocol_file(&p);
        let q = parse_protocol_file(&rendered).unwrap();
        assert_eq!(
            p.transitions().collect::<Vec<_>>(),
            q.transitions().collect::<Vec<_>>()
        );
        assert_eq!(p.legit(), q.legit());
        assert_eq!(p.name(), q.name());
    }

    #[test]
    fn render_synthesized_protocol_roundtrips() {
        let p = parse_protocol_file(SUM_NOT_TWO).unwrap();
        let synth = p.with_transitions("synth", p.transitions()).unwrap();
        let rendered = render_protocol_file(&synth);
        let q = parse_protocol_file(&rendered).unwrap();
        assert_eq!(
            synth.transitions().collect::<Vec<_>>(),
            q.transitions().collect::<Vec<_>>()
        );
    }
}

//! Parser for the guarded-command DSL.
//!
//! Actions are written in Dijkstra's guarded-command notation, directly
//! mirroring the paper:
//!
//! ```text
//! m[r-1] == left && m[r] != self && m[r+1] == right  ->  m[r] := self
//! m[r-1] == self && m[r] == self && m[r+1] == self   ->  m[r] := right | left
//! (x[r] + x[r-1] == 2) && (x[r] != 2)                ->  x[r] := (x[r] + 1) % 3
//! ```
//!
//! * Variables are `name[r]`, `name[r-1]`, `name[r+2]`, … where `name` is the
//!   protocol's variable and the offset must lie within the declared
//!   [`Locality`].
//! * Bare identifiers are domain value labels (`left`, `self`, …); integer
//!   literals are also accepted for numeric domains.
//! * `|` on the right-hand side separates nondeterministic alternatives.

use crate::domain::Domain;
use crate::error::ProtocolError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::locality::Locality;

/// A parsed guarded-command action: `guard -> x[r] := alt_1 | alt_2 | …`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedAction {
    /// The guard expression (must be boolean).
    pub guard: Expr,
    /// The nondeterministic right-hand-side alternatives.
    pub alternatives: Vec<Expr>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Plus,
    Minus,
    Star,
    Percent,
    EqEq,
    NotEq,
    Le,
    Ge,
    Lt,
    Gt,
    AndAnd,
    OrOr,
    Bang,
    Arrow,
    Assign,
    Pipe,
}

fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, ProtocolError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                toks.push((start, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((start, Tok::RParen));
                i += 1;
            }
            '[' => {
                toks.push((start, Tok::LBracket));
                i += 1;
            }
            ']' => {
                toks.push((start, Tok::RBracket));
                i += 1;
            }
            '+' => {
                toks.push((start, Tok::Plus));
                i += 1;
            }
            '*' => {
                toks.push((start, Tok::Star));
                i += 1;
            }
            '%' => {
                toks.push((start, Tok::Percent));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push((start, Tok::Arrow));
                    i += 2;
                } else {
                    toks.push((start, Tok::Minus));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((start, Tok::EqEq));
                    i += 2;
                } else {
                    return Err(err(start, "expected `==` (single `=` is not an operator)"));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((start, Tok::NotEq));
                    i += 2;
                } else {
                    toks.push((start, Tok::Bang));
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((start, Tok::Le));
                    i += 2;
                } else {
                    toks.push((start, Tok::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((start, Tok::Ge));
                    i += 2;
                } else {
                    toks.push((start, Tok::Gt));
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    toks.push((start, Tok::AndAnd));
                    i += 2;
                } else {
                    return Err(err(start, "expected `&&`"));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push((start, Tok::OrOr));
                    i += 2;
                } else {
                    toks.push((start, Tok::Pipe));
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((start, Tok::Assign));
                    i += 2;
                } else {
                    return Err(err(start, "expected `:=`"));
                }
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text = &input[i..j];
                let value: i64 = text.parse().map_err(|_| err(start, "integer overflow"))?;
                toks.push((start, Tok::Int(value)));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                toks.push((start, Tok::Ident(input[i..j].to_owned())));
                i = j;
            }
            other => {
                return Err(err(start, &format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(toks)
}

fn err(position: usize, message: &str) -> ProtocolError {
    ProtocolError::Parse {
        position,
        message: message.to_owned(),
    }
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    domain: &'a Domain,
    locality: Locality,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &str, domain: &'a Domain, locality: Locality) -> Result<Self, ProtocolError> {
        Ok(Parser {
            toks: tokenize(input)?,
            pos: 0,
            domain,
            locality,
            input_len: input.len(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ProtocolError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(self.here(), &format!("expected {what}")))
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ProtocolError> {
        let mut e = self.parse_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            let r = self.parse_and()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<Expr, ProtocolError> {
        let mut e = self.parse_cmp()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            let r = self.parse_cmp()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ProtocolError> {
        let l = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::NotEq) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let r = self.parse_add()?;
            Ok(Expr::Binary(op, Box::new(l), Box::new(r)))
        } else {
            Ok(l)
        }
    }

    fn parse_add(&mut self) -> Result<Expr, ProtocolError> {
        let mut e = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let r = self.parse_mul()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_mul(&mut self) -> Result<Expr, ProtocolError> {
        let mut e = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let r = self.parse_unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_unary(&mut self) -> Result<Expr, ProtocolError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ProtocolError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::LParen) => {
                let e = self.parse_or()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Int(v)) => Ok(Expr::Const(v)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LBracket) {
                    self.parse_var_suffix(&name, at)
                } else if name == self.domain.variable() {
                    Err(ProtocolError::BadVariable {
                        reference: name,
                        message: "variable must be indexed, e.g. `x[r]`".into(),
                    })
                } else {
                    let v = self.domain.require(&name)?;
                    Ok(Expr::Const(v as i64))
                }
            }
            _ => Err(err(at, "expected an expression")),
        }
    }

    /// Parses the `[r±k]` suffix of a variable reference whose name was
    /// already consumed.
    fn parse_var_suffix(&mut self, name: &str, at: usize) -> Result<Expr, ProtocolError> {
        self.expect(&Tok::LBracket, "`[`")?;
        match self.bump() {
            Some(Tok::Ident(idx)) if idx == "r" => {}
            _ => {
                return Err(err(at, "variable index must be `r`, `r+k` or `r-k`"));
            }
        }
        let offset: isize = match self.peek() {
            Some(Tok::Plus) => {
                self.pos += 1;
                match self.bump() {
                    Some(Tok::Int(k)) => k as isize,
                    _ => return Err(err(at, "expected an integer after `r+`")),
                }
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                match self.bump() {
                    Some(Tok::Int(k)) => -(k as isize),
                    _ => return Err(err(at, "expected an integer after `r-`")),
                }
            }
            _ => 0,
        };
        self.expect(&Tok::RBracket, "`]`")?;
        if name != self.domain.variable() {
            return Err(ProtocolError::BadVariable {
                reference: format!("{name}[…]"),
                message: format!(
                    "unknown variable; the protocol variable is `{}`",
                    self.domain.variable()
                ),
            });
        }
        if self.locality.window_index(offset).is_none() {
            return Err(ProtocolError::BadVariable {
                reference: format!("{name}[r{offset:+}]"),
                message: format!("offset outside locality {}", self.locality),
            });
        }
        Ok(Expr::Var(offset))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

/// Parses a standalone boolean expression (e.g. a legitimate-state predicate
/// `LC_r`).
///
/// # Errors
///
/// Returns a [`ProtocolError`] on syntax errors, unknown labels, or variable
/// offsets outside the locality.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{parser::parse_expr, Domain, Locality};
///
/// let d = Domain::numeric("x", 3);
/// let e = parse_expr("x[r] + x[r-1] != 2", &d, Locality::unidirectional())?;
/// assert_eq!(e.eval_guard(&[1, 0], Locality::unidirectional())?, true);
/// assert_eq!(e.eval_guard(&[1, 1], Locality::unidirectional())?, false);
/// # Ok::<(), selfstab_protocol::ProtocolError>(())
/// ```
pub fn parse_expr(input: &str, domain: &Domain, locality: Locality) -> Result<Expr, ProtocolError> {
    let mut p = Parser::new(input, domain, locality)?;
    let e = p.parse_or()?;
    if !p.at_end() {
        return Err(err(p.here(), "unexpected trailing input"));
    }
    Ok(e)
}

/// Parses a guarded-command action `guard -> x[r] := rhs (| rhs)*`.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on syntax errors, when the assignment target
/// is not the owned variable `x[r]`, or on unknown labels/offsets.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{parser::parse_action, Domain, Locality};
///
/// let d = Domain::named("m", ["left", "right", "self"]);
/// let a = parse_action(
///     "m[r-1] == self && m[r] == self && m[r+1] == self -> m[r] := right | left",
///     &d,
///     Locality::bidirectional(),
/// )?;
/// assert_eq!(a.alternatives.len(), 2);
/// # Ok::<(), selfstab_protocol::ProtocolError>(())
/// ```
pub fn parse_action(
    input: &str,
    domain: &Domain,
    locality: Locality,
) -> Result<ParsedAction, ProtocolError> {
    let mut p = Parser::new(input, domain, locality)?;
    let guard = p.parse_or()?;
    p.expect(&Tok::Arrow, "`->` between guard and statement")?;

    // Assignment target: must be the owned variable at offset 0.
    let at = p.here();
    let target = match p.bump() {
        Some(Tok::Ident(name)) => p.parse_var_suffix(&name, at)?,
        _ => return Err(err(at, "expected an assignment `x[r] := …`")),
    };
    if target != Expr::Var(0) {
        return Err(ProtocolError::BadVariable {
            reference: format!("{target:?}"),
            message: "only the owned variable `x[r]` may be assigned".into(),
        });
    }
    p.expect(&Tok::Assign, "`:=`")?;

    let mut alternatives = vec![p.parse_or()?];
    while p.peek() == Some(&Tok::Pipe) {
        p.pos += 1;
        alternatives.push(p.parse_or()?);
    }
    if !p.at_end() {
        return Err(err(p.here(), "unexpected trailing input"));
    }
    Ok(ParsedAction {
        guard,
        alternatives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> Domain {
        Domain::named("m", ["left", "right", "self"])
    }

    #[test]
    fn parses_paper_action_a1() {
        let a = parse_action(
            "m[r-1] == left && m[r] != self && m[r+1] == right -> m[r] := self",
            &dom(),
            Locality::bidirectional(),
        )
        .unwrap();
        assert_eq!(a.alternatives, vec![Expr::Const(2)]);
        // guard holds at ⟨left, right, right⟩
        assert!(a
            .guard
            .eval_guard(&[0, 1, 1], Locality::bidirectional())
            .unwrap());
        assert!(!a
            .guard
            .eval_guard(&[0, 2, 1], Locality::bidirectional())
            .unwrap());
    }

    #[test]
    fn nondeterministic_alternatives() {
        let a = parse_action(
            "m[r-1] == self && m[r] == self && m[r+1] == self -> m[r] := right | left",
            &dom(),
            Locality::bidirectional(),
        )
        .unwrap();
        assert_eq!(a.alternatives, vec![Expr::Const(1), Expr::Const(0)]);
    }

    #[test]
    fn arithmetic_rhs() {
        let d = Domain::numeric("x", 3);
        let a = parse_action(
            "(x[r] + x[r-1] == 2) && (x[r] != 2) -> x[r] := (x[r] + 1) % 3",
            &d,
            Locality::unidirectional(),
        )
        .unwrap();
        assert_eq!(
            a.alternatives[0]
                .eval_int(&[0, 2], Locality::unidirectional())
                .unwrap(),
            0
        );
    }

    #[test]
    fn rejects_assignment_to_neighbor() {
        let e = parse_action(
            "m[r] == left -> m[r+1] := left",
            &dom(),
            Locality::bidirectional(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("owned variable"));
    }

    #[test]
    fn rejects_out_of_window_reference() {
        let e = parse_expr("m[r+1] == left", &dom(), Locality::unidirectional()).unwrap_err();
        assert!(e.to_string().contains("outside locality"));
    }

    #[test]
    fn rejects_unknown_label() {
        let e = parse_expr("m[r] == lefty", &dom(), Locality::bidirectional()).unwrap_err();
        assert!(matches!(e, ProtocolError::UnknownValue { .. }));
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = parse_expr("y[r] == 0", &dom(), Locality::bidirectional()).unwrap_err();
        assert!(matches!(e, ProtocolError::BadVariable { .. }));
    }

    #[test]
    fn rejects_bare_variable() {
        let e = parse_expr("m == left", &dom(), Locality::bidirectional()).unwrap_err();
        assert!(e.to_string().contains("indexed"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse_expr("m[r] == left left", &dom(), Locality::bidirectional()).unwrap_err();
        assert!(e.to_string().contains("trailing"));
    }

    #[test]
    fn precedence_and_parentheses() {
        let d = Domain::numeric("x", 5);
        let loc = Locality::unidirectional();
        // 1 + 2 * 2 == 5 (mul binds tighter)
        let e = parse_expr("1 + 2 * 2 == 5", &d, loc).unwrap();
        assert!(e.eval_guard(&[0, 0], loc).unwrap());
        // (1 + 2) * 2 == 6
        let e = parse_expr("(1 + 2) * 2 == 6", &d, loc).unwrap();
        assert!(e.eval_guard(&[0, 0], loc).unwrap());
        // && binds tighter than ||
        let e = parse_expr("1 == 1 || 1 == 2 && 2 == 3", &d, loc).unwrap();
        assert!(e.eval_guard(&[0, 0], loc).unwrap());
    }

    #[test]
    fn negation_and_unary_minus() {
        let d = Domain::numeric("x", 3);
        let loc = Locality::unidirectional();
        let e = parse_expr("!(x[r] == 0)", &d, loc).unwrap();
        assert!(e.eval_guard(&[0, 1], loc).unwrap());
        let e = parse_expr("-1 + 2 == 1", &d, loc).unwrap();
        assert!(e.eval_guard(&[0, 0], loc).unwrap());
    }

    #[test]
    fn error_positions_point_into_input() {
        let input = "m[r] == left &&";
        let e = parse_expr(input, &dom(), Locality::bidirectional()).unwrap_err();
        match e {
            ProtocolError::Parse { position, .. } => assert_eq!(position, input.len()),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn single_equals_is_rejected_with_hint() {
        let e = parse_expr("m[r] = left", &dom(), Locality::bidirectional()).unwrap_err();
        assert!(e.to_string().contains("=="));
    }
}

//! Expressions of the guarded-command DSL.

use crate::domain::Value;
use crate::error::ProtocolError;
use crate::locality::Locality;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `%` (Euclidean remainder: result is always non-negative)
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `!`
    Not,
    /// unary `-`
    Neg,
}

/// An expression over the read window of the representative process.
///
/// Variables are identified by their ring offset relative to `r`: `Var(-1)`
/// is `x[r-1]`, `Var(0)` is `x[r]`. Domain labels are resolved to their
/// numeric value at parse time, so evaluation only sees integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A window variable, by ring offset.
    Var(isize),
    /// An integer constant (possibly a resolved domain label).
    Const(i64),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
}

/// A runtime value of the expression language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Val {
    /// An integer (domain values evaluate to their index).
    Int(i64),
    /// A boolean (comparisons and logical connectives).
    Bool(bool),
}

impl Val {
    fn as_int(self) -> Result<i64, ProtocolError> {
        match self {
            Val::Int(i) => Ok(i),
            Val::Bool(_) => Err(ProtocolError::Eval {
                message: "expected an integer, found a boolean".into(),
            }),
        }
    }

    fn as_bool(self) -> Result<bool, ProtocolError> {
        match self {
            Val::Bool(b) => Ok(b),
            Val::Int(_) => Err(ProtocolError::Eval {
                message: "expected a boolean, found an integer".into(),
            }),
        }
    }
}

impl Expr {
    /// Evaluates the expression over a window valuation.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Eval`] on type mismatches, division by zero
    /// (for `%`), or variable offsets outside the locality window.
    pub fn eval(&self, window: &[Value], locality: Locality) -> Result<Val, ProtocolError> {
        match self {
            Expr::Var(off) => {
                let idx = locality
                    .window_index(*off)
                    .ok_or_else(|| ProtocolError::Eval {
                        message: format!("variable offset {off} outside locality {locality}"),
                    })?;
                Ok(Val::Int(window[idx] as i64))
            }
            Expr::Const(c) => Ok(Val::Int(*c)),
            Expr::Unary(op, e) => {
                let v = e.eval(window, locality)?;
                match op {
                    UnOp::Not => Ok(Val::Bool(!v.as_bool()?)),
                    UnOp::Neg => Ok(Val::Int(-v.as_int()?)),
                }
            }
            Expr::Binary(op, l, r) => {
                // Short-circuit the logical connectives.
                match op {
                    BinOp::And => {
                        let lv = l.eval(window, locality)?.as_bool()?;
                        return if !lv {
                            Ok(Val::Bool(false))
                        } else {
                            Ok(Val::Bool(r.eval(window, locality)?.as_bool()?))
                        };
                    }
                    BinOp::Or => {
                        let lv = l.eval(window, locality)?.as_bool()?;
                        return if lv {
                            Ok(Val::Bool(true))
                        } else {
                            Ok(Val::Bool(r.eval(window, locality)?.as_bool()?))
                        };
                    }
                    _ => {}
                }
                let lv = l.eval(window, locality)?.as_int()?;
                let rv = r.eval(window, locality)?.as_int()?;
                let out = match op {
                    BinOp::Add => Val::Int(lv + rv),
                    BinOp::Sub => Val::Int(lv - rv),
                    BinOp::Mul => Val::Int(lv * rv),
                    BinOp::Mod => {
                        if rv == 0 {
                            return Err(ProtocolError::Eval {
                                message: "modulo by zero".into(),
                            });
                        }
                        Val::Int(lv.rem_euclid(rv))
                    }
                    BinOp::Eq => Val::Bool(lv == rv),
                    BinOp::Ne => Val::Bool(lv != rv),
                    BinOp::Lt => Val::Bool(lv < rv),
                    BinOp::Le => Val::Bool(lv <= rv),
                    BinOp::Gt => Val::Bool(lv > rv),
                    BinOp::Ge => Val::Bool(lv >= rv),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                Ok(out)
            }
        }
    }

    /// Evaluates as a boolean guard.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Eval`] if the expression is not boolean.
    pub fn eval_guard(&self, window: &[Value], locality: Locality) -> Result<bool, ProtocolError> {
        self.eval(window, locality)?.as_bool()
    }

    /// Evaluates as an integer (e.g. an assignment right-hand side).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Eval`] if the expression is not an integer.
    pub fn eval_int(&self, window: &[Value], locality: Locality) -> Result<i64, ProtocolError> {
        self.eval(window, locality)?.as_int()
    }

    /// The set of ring offsets referenced by the expression.
    pub fn referenced_offsets(&self) -> Vec<isize> {
        let mut offs = Vec::new();
        self.collect_offsets(&mut offs);
        offs.sort_unstable();
        offs.dedup();
        offs
    }

    fn collect_offsets(&self, out: &mut Vec<isize>) {
        match self {
            Expr::Var(o) => out.push(*o),
            Expr::Const(_) => {}
            Expr::Unary(_, e) => e.collect_offsets(out),
            Expr::Binary(_, l, r) => {
                l.collect_offsets(out);
                r.collect_offsets(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(o: isize) -> Expr {
        Expr::Var(o)
    }

    fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    fn uni() -> Locality {
        Locality::unidirectional()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = bin(BinOp::Eq, bin(BinOp::Add, var(-1), var(0)), c(2));
        assert!(e.eval_guard(&[1, 1], uni()).unwrap());
        assert!(!e.eval_guard(&[0, 1], uni()).unwrap());
    }

    #[test]
    fn modulo_is_euclidean() {
        let e = bin(BinOp::Mod, bin(BinOp::Sub, var(0), c(1)), c(3));
        assert_eq!(e.eval_int(&[0, 0], uni()).unwrap(), 2); // (0-1) mod 3 = 2
    }

    #[test]
    fn modulo_by_zero_is_an_error() {
        let e = bin(BinOp::Mod, c(1), c(0));
        assert!(e.eval_int(&[0, 0], uni()).is_err());
    }

    #[test]
    fn short_circuit_avoids_type_errors() {
        // false && (1) — the RHS is ill-typed but must not be evaluated.
        let e = bin(BinOp::And, bin(BinOp::Eq, c(0), c(1)), c(1));
        assert!(!e.eval_guard(&[0, 0], uni()).unwrap());
        let e = bin(BinOp::Or, bin(BinOp::Eq, c(0), c(0)), c(1));
        assert!(e.eval_guard(&[0, 0], uni()).unwrap());
    }

    #[test]
    fn type_errors_are_reported() {
        let e = bin(BinOp::Add, bin(BinOp::Eq, c(0), c(0)), c(1));
        assert!(e.eval(&[0, 0], uni()).is_err());
        let e = Expr::Unary(UnOp::Not, Box::new(c(1)));
        assert!(e.eval(&[0, 0], uni()).is_err());
    }

    #[test]
    fn out_of_window_offset_is_an_error() {
        let e = var(1); // x[r+1] not readable on a unidirectional ring
        assert!(e.eval(&[0, 0], uni()).is_err());
    }

    #[test]
    fn referenced_offsets_dedup_sorted() {
        let e = bin(BinOp::Add, var(0), bin(BinOp::Add, var(-1), var(0)));
        assert_eq!(e.referenced_offsets(), vec![-1, 0]);
    }
}

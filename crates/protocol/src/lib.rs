//! The parameterized ring-protocol model of the `selfstab` toolkit.
//!
//! This crate implements Section 2 of Farahat & Ebnenasir, *Local Reasoning
//! for Global Convergence of Parameterized Rings* (ICDCS 2012): parameterized
//! protocols `p(K) = ⟨Φ_p(K), Π_p(K), Δ_p(K)⟩` whose `K` similar processes
//! are instantiated from a *representative process* `P_r`.
//!
//! The model fixes the structure common to every protocol in the paper:
//!
//! * each process `P_r` **owns** (reads and writes) one variable `x_r` over a
//!   finite [`Domain`];
//! * `P_r` additionally **reads** a window of neighbors' variables given by a
//!   [`Locality`] `(left, right)` — `(1, 0)` for unidirectional rings
//!   (`R_r = {x_{r-1}, x_r}`), `(1, 1)` for bidirectional rings
//!   (`R_r = {x_{r-1}, x_r, x_{r+1}}`);
//! * a *local state* is a valuation of the window, encoded compactly by
//!   [`LocalStateSpace`];
//! * the behavior `δ_r` is a set of [`LocalTransition`]s — pairs (source
//!   local state, new value of `x_r`);
//! * the legitimate states are *locally conjunctive*:
//!   `I(K) = ∧_r LC_r` where `LC_r` is a [`LocalPredicate`].
//!
//! Protocols are written either programmatically or in Dijkstra's guarded
//! command notation via the built-in [`parser`]:
//!
//! ```
//! use selfstab_protocol::{Domain, Locality, Protocol};
//!
//! // Binary agreement on a unidirectional ring, with one recovery action.
//! let p = Protocol::builder("agreement", Domain::numeric("x", 2), Locality::unidirectional())
//!     .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
//!     .legit("x[r] == x[r-1]")?
//!     .build()?;
//!
//! assert_eq!(p.space().len(), 4);
//! assert_eq!(p.transitions().count(), 1);
//! # Ok::<(), selfstab_protocol::ProtocolError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod display;
pub mod domain;
pub mod error;
pub mod expr;
pub mod file;
pub mod locality;
pub mod parser;
pub mod predicate;
pub mod protocol;
pub mod space;
pub mod transition;

pub use action::GuardedCommand;
pub use domain::{Domain, Value};
pub use error::ProtocolError;
pub use expr::Expr;
pub use locality::Locality;
pub use predicate::LocalPredicate;
pub use protocol::{Protocol, ProtocolBuilder};
pub use space::{LocalStateId, LocalStateSpace};
pub use transition::LocalTransition;

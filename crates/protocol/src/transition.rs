//! Local transitions of the representative process.

use crate::domain::{Domain, Value};
use crate::locality::Locality;
use crate::space::{LocalStateId, LocalStateSpace};

/// A local transition of the representative process `P_r`.
///
/// Per Section 2.1 of the paper, a local transition is a pair of local
/// states `(s, s')` that agree on every read-only variable; since `P_r`
/// writes only `x_r`, a transition is fully described by its source state
/// and the new value of `x_r`. The toolkit additionally requires
/// `target != x_r(source)` — a transition that rewrites the same value is a
/// global self-loop, which is a *self-enabling* action (forbidden by the
/// paper's Assumption 2) and useless for convergence.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, LocalStateSpace, LocalTransition};
///
/// let sp = LocalStateSpace::new(&Domain::numeric("x", 2), Locality::unidirectional());
/// let s = sp.encode(&[1, 0]);
/// let t = LocalTransition::new(s, 1);
/// assert_eq!(sp.decode(t.target_state(&sp, Locality::unidirectional())), vec![1, 1]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalTransition {
    /// The source local state.
    pub source: LocalStateId,
    /// The new value written to `x_r`.
    pub target: Value,
}

impl LocalTransition {
    /// Creates a local transition.
    pub fn new(source: LocalStateId, target: Value) -> Self {
        LocalTransition { source, target }
    }

    /// The local state reached by executing this transition: the source
    /// window with `x_r` replaced by [`LocalTransition::target`].
    ///
    /// # Panics
    ///
    /// Panics if the transition is inconsistent with `space`/`locality`.
    pub fn target_state(&self, space: &LocalStateSpace, locality: Locality) -> LocalStateId {
        space.with_value(self.source, locality.center(), self.target)
    }

    /// The value of `x_r` before the transition.
    pub fn source_value(&self, space: &LocalStateSpace, locality: Locality) -> Value {
        space.value_at(self.source, locality.center())
    }

    /// The projection of the transition on the writable variable `W_r`:
    /// the `(old, new)` value pair of `x_r`. Pseudo-livelock analysis
    /// (Definition 5.13) works on these projections.
    pub fn write_projection(&self, space: &LocalStateSpace, locality: Locality) -> (Value, Value) {
        (self.source_value(space, locality), self.target)
    }

    /// Formats the transition as a one-line guarded command.
    pub fn display(&self, space: &LocalStateSpace, locality: Locality, domain: &Domain) -> String {
        let values = space.decode(self.source);
        let guard: Vec<String> = values
            .iter()
            .enumerate()
            .map(|(idx, &v)| {
                let off = locality.offset_of(idx);
                let var = match off {
                    0 => format!("{}[r]", domain.variable()),
                    o if o < 0 => format!("{}[r{}]", domain.variable(), o),
                    o => format!("{}[r+{}]", domain.variable(), o),
                };
                format!("{} == {}", var, domain.label(v))
            })
            .collect();
        format!(
            "{} -> {}[r] := {}",
            guard.join(" && "),
            domain.variable(),
            domain.label(self.target)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_state_replaces_center() {
        let d = Domain::named("m", ["left", "right", "self"]);
        let loc = Locality::bidirectional();
        let sp = LocalStateSpace::new(&d, loc);
        let s = sp.encode(&[0, 1, 2]);
        let t = LocalTransition::new(s, 2);
        assert_eq!(sp.decode(t.target_state(&sp, loc)), vec![0, 2, 2]);
        assert_eq!(t.source_value(&sp, loc), 1);
        assert_eq!(t.write_projection(&sp, loc), (1, 2));
    }

    #[test]
    fn display_renders_guard_and_assignment() {
        let d = Domain::numeric("x", 2);
        let loc = Locality::unidirectional();
        let sp = LocalStateSpace::new(&d, loc);
        let t = LocalTransition::new(sp.encode(&[1, 0]), 1);
        assert_eq!(
            t.display(&sp, loc, &d),
            "x[r-1] == 1 && x[r] == 0 -> x[r] := 1"
        );
    }

    #[test]
    fn ordering_is_stable() {
        let a = LocalTransition::new(LocalStateId(1), 0);
        let b = LocalTransition::new(LocalStateId(1), 1);
        let c = LocalTransition::new(LocalStateId(2), 0);
        assert!(a < b && b < c);
    }
}

//! The representative process of a parameterized ring protocol.

use std::collections::BTreeSet;
use std::fmt;

use crate::action::GuardedCommand;
use crate::domain::{Domain, Value};
use crate::error::ProtocolError;
use crate::expr::Expr;
use crate::locality::Locality;
use crate::parser::parse_expr;
use crate::predicate::LocalPredicate;
use crate::space::{LocalStateId, LocalStateSpace};
use crate::transition::LocalTransition;

/// A parameterized ring protocol, given by its representative process `P_r`.
///
/// Holds the finite [`Domain`] of the owned variable, the read [`Locality`],
/// the set `δ_r` of [`LocalTransition`]s, and the local legitimate-state
/// predicate `LC_r` (so that `I(K) = ∧_r LC_r` is locally conjunctive, as
/// the paper assumes throughout).
///
/// `Protocol` values are immutable; use [`Protocol::builder`] to construct
/// one and [`Protocol::with_added_transitions`] /
/// [`Protocol::with_transitions`] to derive revisions (as the synthesis
/// methodology does).
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, Locality, Protocol};
///
/// let p = Protocol::builder("three-coloring", Domain::numeric("c", 3), Locality::unidirectional())
///     .legit("c[r] != c[r-1]")?
///     .build()?;
/// assert_eq!(p.space().len(), 9);
/// assert_eq!(p.legit().len(), 6);
/// assert_eq!(p.local_deadlocks().len(), 9); // empty protocol: all states deadlocked
/// # Ok::<(), selfstab_protocol::ProtocolError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Protocol {
    name: String,
    domain: Domain,
    locality: Locality,
    space: LocalStateSpace,
    transitions: BTreeSet<LocalTransition>,
    by_source: Vec<Vec<Value>>,
    legit: LocalPredicate,
    legit_source: String,
    actions: Vec<GuardedCommand>,
}

impl Protocol {
    /// Starts building a protocol.
    pub fn builder(name: &str, domain: Domain, locality: Locality) -> ProtocolBuilder {
        let space = LocalStateSpace::new(&domain, locality);
        ProtocolBuilder {
            name: name.to_owned(),
            domain,
            locality,
            space,
            transitions: BTreeSet::new(),
            legit: None,
            legit_source: String::new(),
            actions: Vec::new(),
        }
    }

    /// The protocol's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variable domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The read locality.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// The local state space codec.
    pub fn space(&self) -> &LocalStateSpace {
        &self.space
    }

    /// The legitimate-state predicate `LC_r`.
    pub fn legit(&self) -> &LocalPredicate {
        &self.legit
    }

    /// The source text of `LC_r`, when it was parsed from the DSL.
    pub fn legit_source(&self) -> &str {
        &self.legit_source
    }

    /// The guarded commands the protocol was built from (for display; may be
    /// empty for programmatically-built or synthesized protocols).
    pub fn actions(&self) -> &[GuardedCommand] {
        &self.actions
    }

    /// Iterates over `δ_r`, the set of local transitions.
    pub fn transitions(&self) -> impl Iterator<Item = LocalTransition> + '_ {
        self.transitions.iter().copied()
    }

    /// Number of local transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The values `x_r` may be set to from local state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn transitions_from(&self, id: LocalStateId) -> &[Value] {
        &self.by_source[id.index()]
    }

    /// Returns `true` if the transition is in `δ_r`.
    pub fn has_transition(&self, t: LocalTransition) -> bool {
        self.transitions.contains(&t)
    }

    /// Returns `true` if some action of `P_r` is enabled at `id`.
    pub fn is_enabled(&self, id: LocalStateId) -> bool {
        !self.by_source[id.index()].is_empty()
    }

    /// The set of *enablements* — local states where `P_r` is enabled.
    pub fn enabled_states(&self) -> LocalPredicate {
        LocalPredicate::from_fn(&self.space, |id, _| self.is_enabled(id))
    }

    /// The set `D_L^l` of local deadlocks — local states with no enabled
    /// action.
    pub fn local_deadlocks(&self) -> LocalPredicate {
        LocalPredicate::from_fn(&self.space, |id, _| !self.is_enabled(id))
    }

    /// The illegitimate local deadlocks `¬LC_r ∩ D_L^l`.
    pub fn illegitimate_deadlocks(&self) -> LocalPredicate {
        self.local_deadlocks().and(&self.legit.negated())
    }

    /// Derives a protocol with `extra` transitions added to `δ_r` (the
    /// `p_ss` revisions of the synthesis methodology).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Invalid`] if a transition is out of range or
    /// is an identity write.
    pub fn with_added_transitions<I>(&self, name: &str, extra: I) -> Result<Protocol, ProtocolError>
    where
        I: IntoIterator<Item = LocalTransition>,
    {
        let mut transitions = self.transitions.clone();
        for t in extra {
            validate_transition(&self.space, self.locality, t)?;
            transitions.insert(t);
        }
        Ok(Protocol {
            name: name.to_owned(),
            by_source: index_by_source(&self.space, &transitions),
            transitions,
            domain: self.domain.clone(),
            locality: self.locality,
            space: self.space,
            legit: self.legit.clone(),
            legit_source: self.legit_source.clone(),
            actions: self.actions.clone(),
        })
    }

    /// Derives a protocol whose `δ_r` is exactly `transitions`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Invalid`] if a transition is out of range or
    /// is an identity write.
    pub fn with_transitions<I>(&self, name: &str, transitions: I) -> Result<Protocol, ProtocolError>
    where
        I: IntoIterator<Item = LocalTransition>,
    {
        let mut set = BTreeSet::new();
        for t in transitions {
            validate_transition(&self.space, self.locality, t)?;
            set.insert(t);
        }
        Ok(Protocol {
            name: name.to_owned(),
            by_source: index_by_source(&self.space, &set),
            transitions: set,
            domain: self.domain.clone(),
            locality: self.locality,
            space: self.space,
            legit: self.legit.clone(),
            legit_source: self.legit_source.clone(),
            actions: Vec::new(),
        })
    }
}

fn validate_transition(
    space: &LocalStateSpace,
    locality: Locality,
    t: LocalTransition,
) -> Result<(), ProtocolError> {
    if t.source.index() >= space.len() {
        return Err(ProtocolError::Invalid {
            message: format!("transition source {} out of range", t.source),
        });
    }
    if t.target as usize >= space.domain_size() {
        return Err(ProtocolError::Invalid {
            message: format!("transition target value {} out of domain", t.target),
        });
    }
    if space.value_at(t.source, locality.center()) == t.target {
        return Err(ProtocolError::Invalid {
            message: format!(
                "identity transition at {} (writes the current value {})",
                t.source, t.target
            ),
        });
    }
    Ok(())
}

fn index_by_source(
    space: &LocalStateSpace,
    transitions: &BTreeSet<LocalTransition>,
) -> Vec<Vec<Value>> {
    let mut by_source = vec![Vec::new(); space.len()];
    for t in transitions {
        by_source[t.source.index()].push(t.target);
    }
    by_source
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "protocol {} over {}[{}] with locality {}",
            self.name,
            self.domain.variable(),
            (0..self.domain.size())
                .map(|v| self.domain.label(v as Value).to_owned())
                .collect::<Vec<_>>()
                .join(","),
            self.locality
        )?;
        if !self.legit_source.is_empty() {
            writeln!(f, "  LC_r: {}", self.legit_source)?;
        } else {
            writeln!(
                f,
                "  LC_r: {} of {} local states",
                self.legit.len(),
                self.space.len()
            )?;
        }
        if !self.actions.is_empty() {
            for a in &self.actions {
                writeln!(f, "  {a}")?;
            }
        } else {
            // Synthesized / programmatic protocols: render merged guards.
            for line in crate::display::summarize_transitions(self) {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

/// Builder for [`Protocol`]; see [`Protocol::builder`].
#[derive(Clone, Debug)]
pub struct ProtocolBuilder {
    name: String,
    domain: Domain,
    locality: Locality,
    space: LocalStateSpace,
    transitions: BTreeSet<LocalTransition>,
    legit: Option<LocalPredicate>,
    legit_source: String,
    actions: Vec<GuardedCommand>,
}

impl ProtocolBuilder {
    /// Adds a guarded-command action parsed from the DSL.
    ///
    /// # Errors
    ///
    /// Propagates parse and expansion errors.
    pub fn action(mut self, source: &str) -> Result<Self, ProtocolError> {
        let gc = GuardedCommand::parse(source, &self.domain, self.locality)?;
        let expansion = gc.expand(&self.space, self.locality, &self.domain)?;
        self.transitions.extend(expansion.transitions);
        self.actions.push(gc);
        Ok(self)
    }

    /// Adds several actions; convenience over repeated [`Self::action`].
    ///
    /// # Errors
    ///
    /// Propagates parse and expansion errors.
    pub fn actions<'a, I: IntoIterator<Item = &'a str>>(
        mut self,
        sources: I,
    ) -> Result<Self, ProtocolError> {
        for s in sources {
            self = self.action(s)?;
        }
        Ok(self)
    }

    /// Adds one explicit local transition; `window` is the source window
    /// valuation and `target` the new value of `x_r`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Invalid`] for identity or out-of-range
    /// transitions.
    ///
    /// # Panics
    ///
    /// Panics if `window` has the wrong width or out-of-domain values.
    pub fn transition(mut self, window: &[Value], target: Value) -> Result<Self, ProtocolError> {
        let t = LocalTransition::new(self.space.encode(window), target);
        validate_transition(&self.space, self.locality, t)?;
        self.transitions.insert(t);
        Ok(self)
    }

    /// Sets `LC_r` from a DSL boolean expression.
    ///
    /// # Errors
    ///
    /// Propagates parse and evaluation errors.
    pub fn legit(mut self, source: &str) -> Result<Self, ProtocolError> {
        let expr = parse_expr(source, &self.domain, self.locality)?;
        let mut ids = Vec::new();
        for id in self.space.ids() {
            let window = self.space.decode(id);
            if expr.eval_guard(&window, self.locality)? {
                ids.push(id);
            }
        }
        self.legit = Some(LocalPredicate::from_states(&self.space, ids));
        self.legit_source = source.trim().to_owned();
        Ok(self)
    }

    /// Sets `LC_r` from a closure over local states.
    pub fn legit_fn<F>(mut self, f: F) -> Self
    where
        F: FnMut(LocalStateId, &LocalStateSpace) -> bool,
    {
        self.legit = Some(LocalPredicate::from_fn(&self.space, f));
        self
    }

    /// Sets `LC_r` from a pre-built expression.
    ///
    /// # Errors
    ///
    /// Returns an error if the expression is not boolean or references
    /// variables outside the locality.
    pub fn legit_expr(mut self, expr: &Expr) -> Result<Self, ProtocolError> {
        let mut ids = Vec::new();
        for id in self.space.ids() {
            let window = self.space.decode(id);
            if expr.eval_guard(&window, self.locality)? {
                ids.push(id);
            }
        }
        self.legit = Some(LocalPredicate::from_states(&self.space, ids));
        self.legit_source.clear();
        Ok(self)
    }

    /// Declares every local state legitimate.
    pub fn legit_all(mut self) -> Self {
        self.legit = Some(LocalPredicate::all(&self.space));
        self
    }

    /// Finalizes the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Invalid`] if no legitimate-state predicate
    /// was provided or `LC_r` is empty (the paper requires a non-empty
    /// legitimate predicate).
    pub fn build(self) -> Result<Protocol, ProtocolError> {
        let legit = self.legit.ok_or_else(|| ProtocolError::Invalid {
            message: "no legitimate-state predicate (call .legit(...)/.legit_fn(...))".into(),
        })?;
        if legit.is_empty() {
            return Err(ProtocolError::Invalid {
                message: "LC_r is empty: no local state is legitimate".into(),
            });
        }
        Ok(Protocol {
            by_source: index_by_source(&self.space, &self.transitions),
            name: self.name,
            domain: self.domain,
            locality: self.locality,
            space: self.space,
            transitions: self.transitions,
            legit,
            legit_source: self.legit_source,
            actions: self.actions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agreement_both() -> Protocol {
        Protocol::builder(
            "agreement",
            Domain::numeric("x", 2),
            Locality::unidirectional(),
        )
        .action("x[r-1] == 0 && x[r] == 1 -> x[r] := 0")
        .unwrap()
        .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")
        .unwrap()
        .legit("x[r] == x[r-1]")
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn agreement_structure() {
        let p = agreement_both();
        assert_eq!(p.transition_count(), 2);
        assert_eq!(p.legit().len(), 2);
        // deadlocks: the two agreeing states
        let dl = p.local_deadlocks();
        assert_eq!(dl.len(), 2);
        assert!(dl.holds(p.space().encode(&[0, 0])));
        assert!(dl.holds(p.space().encode(&[1, 1])));
        assert!(p.illegitimate_deadlocks().is_empty());
    }

    #[test]
    fn transitions_from_index() {
        let p = agreement_both();
        let s10 = p.space().encode(&[1, 0]);
        assert_eq!(p.transitions_from(s10), &[1]);
        assert!(p.is_enabled(s10));
        let s11 = p.space().encode(&[1, 1]);
        assert!(!p.is_enabled(s11));
    }

    #[test]
    fn with_added_transitions_extends() {
        let base = Protocol::builder("empty", Domain::numeric("x", 2), Locality::unidirectional())
            .legit("x[r] == x[r-1]")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(base.transition_count(), 0);
        let s01 = base.space().encode(&[0, 1]);
        let p = base
            .with_added_transitions("one", [LocalTransition::new(s01, 0)])
            .unwrap();
        assert_eq!(p.transition_count(), 1);
        assert_eq!(base.transition_count(), 0);
        assert!(p.has_transition(LocalTransition::new(s01, 0)));
    }

    #[test]
    fn identity_transition_rejected() {
        let base = Protocol::builder("empty", Domain::numeric("x", 2), Locality::unidirectional())
            .legit_all()
            .build()
            .unwrap();
        let s01 = base.space().encode(&[0, 1]);
        let e = base
            .with_added_transitions("bad", [LocalTransition::new(s01, 1)])
            .unwrap_err();
        assert!(e.to_string().contains("identity"));
    }

    #[test]
    fn build_requires_nonempty_legit() {
        let e = Protocol::builder("x", Domain::numeric("x", 2), Locality::unidirectional())
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("legitimate"));
        let e = Protocol::builder("x", Domain::numeric("x", 2), Locality::unidirectional())
            .legit("x[r] != x[r]")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn display_includes_actions_and_legit() {
        let p = agreement_both();
        let s = p.to_string();
        assert!(s.contains("protocol agreement"));
        assert!(s.contains("LC_r: x[r] == x[r-1]"));
        assert!(s.contains("x[r-1] == 1 && x[r] == 0 -> x[r] := 1"));
    }

    #[test]
    fn display_of_synthesized_protocol_lists_transitions() {
        let base = agreement_both();
        let p = base.with_transitions("synth", base.transitions()).unwrap();
        let s = p.to_string();
        assert!(s.contains("-> x[r] := 1"));
    }

    #[test]
    fn builder_transition_api() {
        let p = Protocol::builder("t", Domain::numeric("x", 3), Locality::unidirectional())
            .transition(&[0, 1], 2)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        assert_eq!(p.transition_count(), 1);
        let t = p.transitions().next().unwrap();
        assert_eq!(p.space().decode(t.source), vec![0, 1]);
        assert_eq!(t.target, 2);
    }
}

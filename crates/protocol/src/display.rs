//! Compact guarded-command rendering of transition sets.
//!
//! Synthesized protocols are bags of single-state transitions; printing one
//! guard per local state is faithful but unreadable. This module merges
//! transitions that share a written value into *cubes* — conjunctions of
//! per-variable value sets — mirroring how the paper presents actions
//! (`m[r-1] == left && m[r] != self && m[r+1] == right -> …`).

use crate::domain::{Domain, Value};
use crate::locality::Locality;
use crate::protocol::Protocol;
use crate::space::LocalStateSpace;
use crate::transition::LocalTransition;

/// A cube: for each window position, the set of admitted values (bitmask).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Cube {
    masks: Vec<u32>,
}

impl Cube {
    fn from_state(space: &LocalStateSpace, id: crate::space::LocalStateId) -> Self {
        Cube {
            masks: (0..space.width())
                .map(|pos| 1u32 << space.value_at(id, pos))
                .collect(),
        }
    }

    /// Tries to merge two cubes that are identical except in one position.
    fn merge(&self, other: &Cube) -> Option<Cube> {
        let mut diff = None;
        for (i, (a, b)) in self.masks.iter().zip(&other.masks).enumerate() {
            if a != b {
                if diff.is_some() {
                    return None;
                }
                diff = Some(i);
            }
        }
        let i = diff?;
        let mut masks = self.masks.clone();
        masks[i] |= other.masks[i];
        Some(Cube { masks })
    }

    fn subsumes(&self, other: &Cube) -> bool {
        self.masks
            .iter()
            .zip(&other.masks)
            .all(|(a, b)| b & !a == 0)
    }
}

fn var_name(domain: &Domain, locality: Locality, pos: usize) -> String {
    let off = locality.offset_of(pos);
    match off {
        0 => format!("{}[r]", domain.variable()),
        o if o < 0 => format!("{}[r{o}]", domain.variable()),
        o => format!("{}[r+{o}]", domain.variable()),
    }
}

fn render_cube(cube: &Cube, domain: &Domain, locality: Locality) -> String {
    let d = domain.size();
    let full = (1u32 << d) - 1;
    let mut conjuncts = Vec::new();
    for (pos, &mask) in cube.masks.iter().enumerate() {
        if mask == full {
            continue; // unconstrained
        }
        let var = var_name(domain, locality, pos);
        let values: Vec<Value> = (0..d as Value).filter(|v| mask & (1 << v) != 0).collect();
        let clause = if values.len() == 1 {
            format!("{var} == {}", domain.label(values[0]))
        } else if values.len() == d - 1 {
            // Complement is a single value: render as !=.
            let missing = (0..d as Value)
                .find(|v| mask & (1 << v) == 0)
                .expect("one value missing");
            format!("{var} != {}", domain.label(missing))
        } else {
            let alts: Vec<String> = values
                .iter()
                .map(|&v| format!("{var} == {}", domain.label(v)))
                .collect();
            format!("({})", alts.join(" || "))
        };
        conjuncts.push(clause);
    }
    if conjuncts.is_empty() {
        "1 == 1".to_owned() // always-true guard
    } else {
        conjuncts.join(" && ")
    }
}

/// Renders a transition set as merged guarded commands, one line per
/// written value, with single-change cube merging.
///
/// The output parses back through the DSL to the same transition set
/// (property-tested), so it is a faithful compact presentation.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{display::summarize_transitions, Domain, Locality, Protocol};
///
/// let p = Protocol::builder("ag", Domain::numeric("x", 2), Locality::unidirectional())
///     .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
///     .legit("x[r] == x[r-1]")?
///     .build()?;
/// let lines = summarize_transitions(&p);
/// assert_eq!(lines, vec!["x[r-1] == 1 && x[r] == 0 -> x[r] := 1"]);
/// # Ok::<(), selfstab_protocol::ProtocolError>(())
/// ```
pub fn summarize_transitions(protocol: &Protocol) -> Vec<String> {
    let space = protocol.space();
    let domain = protocol.domain();
    let locality = protocol.locality();
    assert!(
        domain.size() <= 32,
        "cube rendering supports domains up to 32 values"
    );

    // Group sources by written value.
    let mut by_target: Vec<Vec<Cube>> = vec![Vec::new(); domain.size()];
    for t in protocol.transitions() {
        by_target[t.target as usize].push(Cube::from_state(space, t.source));
    }

    let mut lines = Vec::new();
    for (target, mut cubes) in by_target.into_iter().enumerate() {
        if cubes.is_empty() {
            continue;
        }
        // Greedy single-change merging to a fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            'outer: for i in 0..cubes.len() {
                for j in (i + 1)..cubes.len() {
                    if let Some(m) = cubes[i].merge(&cubes[j]) {
                        cubes.swap_remove(j);
                        cubes.swap_remove(i);
                        cubes.push(m);
                        changed = true;
                        break 'outer;
                    }
                }
            }
        }
        // Drop subsumed cubes (can appear after merging).
        let mut kept: Vec<Cube> = Vec::new();
        for c in cubes {
            if !kept.iter().any(|k| k.subsumes(&c)) {
                kept.retain(|k| !c.subsumes(k));
                kept.push(c);
            }
        }
        for cube in kept {
            lines.push(format!(
                "{} -> {}[r] := {}",
                render_cube(&cube, domain, locality),
                domain.variable(),
                domain.label(target as Value)
            ));
        }
    }
    lines.sort();
    lines
}

/// Expands summarized lines back into transitions (test helper for the
/// round-trip property).
///
/// # Errors
///
/// Propagates DSL parse/expansion errors.
pub fn expand_summary(
    protocol: &Protocol,
    lines: &[String],
) -> Result<Vec<LocalTransition>, crate::error::ProtocolError> {
    let mut out = Vec::new();
    for line in lines {
        let gc =
            crate::action::GuardedCommand::parse(line, protocol.domain(), protocol.locality())?;
        out.extend(
            gc.expand(protocol.space(), protocol.locality(), protocol.domain())?
                .transitions,
        );
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn merges_adjacent_states() {
        // (1,0)->1 for any predecessor: two states merge into one guard.
        let p = Protocol::builder("p", Domain::numeric("x", 2), Locality::unidirectional())
            .transition(&[0, 0], 1)
            .unwrap()
            .transition(&[1, 0], 1)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        let lines = summarize_transitions(&p);
        assert_eq!(lines, vec!["x[r] == 0 -> x[r] := 1"]);
    }

    #[test]
    fn renders_not_equal_for_complement() {
        let p = Protocol::builder("p", Domain::numeric("x", 3), Locality::unidirectional())
            .transition(&[0, 0], 1)
            .unwrap()
            .transition(&[2, 0], 1)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        let lines = summarize_transitions(&p);
        assert_eq!(lines, vec!["x[r-1] != 1 && x[r] == 0 -> x[r] := 1"]);
    }

    #[test]
    fn renders_disjunction_when_needed() {
        let p = Protocol::builder("p", Domain::numeric("x", 4), Locality::unidirectional())
            .transition(&[0, 0], 1)
            .unwrap()
            .transition(&[2, 0], 1)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        let lines = summarize_transitions(&p);
        assert_eq!(
            lines,
            vec!["(x[r-1] == 0 || x[r-1] == 2) && x[r] == 0 -> x[r] := 1"]
        );
    }

    #[test]
    fn roundtrip_exact() {
        let p = Protocol::builder("p", Domain::numeric("x", 3), Locality::unidirectional())
            .transition(&[0, 2], 1)
            .unwrap()
            .transition(&[1, 1], 2)
            .unwrap()
            .transition(&[2, 0], 1)
            .unwrap()
            .legit("x[r] + x[r-1] != 2")
            .unwrap()
            .build()
            .unwrap();
        let lines = summarize_transitions(&p);
        let expanded = expand_summary(&p, &lines).unwrap();
        let original: Vec<LocalTransition> = p.transitions().collect();
        assert_eq!(expanded, original);
    }

    #[test]
    fn unconstrained_positions_are_elided() {
        // All four states write 1 when x[r]==0, any pred: and with d=2 both
        // states with x[r]==1 would be identity. Build all-pred coverage.
        let p = Protocol::builder("p", Domain::numeric("x", 2), Locality::unidirectional())
            .transition(&[0, 0], 1)
            .unwrap()
            .transition(&[1, 0], 1)
            .unwrap()
            .transition(&[0, 1], 0)
            .unwrap()
            .transition(&[1, 1], 0)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        let lines = summarize_transitions(&p);
        assert_eq!(
            lines,
            vec!["x[r] == 0 -> x[r] := 1", "x[r] == 1 -> x[r] := 0"]
        );
    }

    #[test]
    fn bidirectional_windows_render_all_offsets() {
        let d = Domain::named("m", ["left", "right", "self"]);
        let p = Protocol::builder("p", d, Locality::bidirectional())
            .transition(&[0, 1, 2], 2)
            .unwrap()
            .legit_all()
            .build()
            .unwrap();
        let lines = summarize_transitions(&p);
        assert_eq!(
            lines,
            vec!["m[r-1] == left && m[r] == right && m[r+1] == self -> m[r] := self"]
        );
    }
}

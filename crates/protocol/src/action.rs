//! Guarded-command actions and their expansion into local transitions.

use crate::domain::Domain;
use crate::error::ProtocolError;
use crate::expr::Expr;
use crate::locality::Locality;
use crate::parser::{parse_action, ParsedAction};
use crate::space::LocalStateSpace;
use crate::transition::LocalTransition;

/// A guarded command `grd_r -> x[r] := rhs (| rhs)*` of the representative
/// process, retaining its source text for faithful display.
///
/// # Examples
///
/// ```
/// use selfstab_protocol::{Domain, GuardedCommand, Locality, LocalStateSpace};
///
/// let d = Domain::numeric("x", 2);
/// let loc = Locality::unidirectional();
/// let gc = GuardedCommand::parse("x[r-1] == 1 && x[r] == 0 -> x[r] := 1", &d, loc)?;
/// let sp = LocalStateSpace::new(&d, loc);
/// let out = gc.expand(&sp, loc, &d)?;
/// assert_eq!(out.transitions.len(), 1);
/// # Ok::<(), selfstab_protocol::ProtocolError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardedCommand {
    source: String,
    guard: Expr,
    alternatives: Vec<Expr>,
}

/// The result of expanding a guarded command over the local state space.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Expansion {
    /// The local transitions denoted by the action.
    pub transitions: Vec<LocalTransition>,
    /// Number of identity writes skipped (`x[r] := v` where `v` already was
    /// the value of `x[r]`): such writes are global self-loops and would make
    /// the action self-enabling, so they are not part of `δ_r`.
    pub identity_skipped: usize,
}

impl GuardedCommand {
    /// Parses an action from its textual form.
    ///
    /// # Errors
    ///
    /// Propagates parser errors; see [`parse_action`].
    pub fn parse(input: &str, domain: &Domain, locality: Locality) -> Result<Self, ProtocolError> {
        let ParsedAction {
            guard,
            alternatives,
        } = parse_action(input, domain, locality)?;
        Ok(GuardedCommand {
            source: input.trim().to_owned(),
            guard,
            alternatives,
        })
    }

    /// Builds an action from already-constructed expressions (no source
    /// text; display falls back to a synthesized form).
    pub fn from_parts(guard: Expr, alternatives: Vec<Expr>) -> Self {
        GuardedCommand {
            source: String::new(),
            guard,
            alternatives,
        }
    }

    /// The original source text, if the action was parsed.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The guard expression.
    pub fn guard(&self) -> &Expr {
        &self.guard
    }

    /// The right-hand-side alternatives.
    pub fn alternatives(&self) -> &[Expr] {
        &self.alternatives
    }

    /// Expands the action into the set of local transitions it denotes:
    /// one transition per (guard-satisfying local state, alternative) pair
    /// whose written value differs from the current one.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Eval`] if the guard is not boolean, an
    /// alternative is not an integer, or a written value falls outside the
    /// domain.
    pub fn expand(
        &self,
        space: &LocalStateSpace,
        locality: Locality,
        domain: &Domain,
    ) -> Result<Expansion, ProtocolError> {
        let mut out = Expansion::default();
        for id in space.ids() {
            let window = space.decode(id);
            if !self.guard.eval_guard(&window, locality)? {
                continue;
            }
            for alt in &self.alternatives {
                let v = alt.eval_int(&window, locality)?;
                if v < 0 || v as usize >= domain.size() {
                    return Err(ProtocolError::Eval {
                        message: format!(
                            "assignment writes {v}, outside domain `{}` of size {}",
                            domain.variable(),
                            domain.size()
                        ),
                    });
                }
                let v = v as u8;
                if v == window[locality.center()] {
                    out.identity_skipped += 1;
                } else {
                    out.transitions.push(LocalTransition::new(id, v));
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Display for GuardedCommand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.source.is_empty() {
            write!(f, "{:?} -> x[r] := {:?}", self.guard, self.alternatives)
        } else {
            f.write_str(&self.source)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_produces_expected_transitions() {
        let d = Domain::named("m", ["left", "right", "self"]);
        let loc = Locality::bidirectional();
        let sp = LocalStateSpace::new(&d, loc);
        let gc = GuardedCommand::parse(
            "m[r-1] == left && m[r] != self && m[r+1] == right -> m[r] := self",
            &d,
            loc,
        )
        .unwrap();
        let out = gc.expand(&sp, loc, &d).unwrap();
        // guard-satisfying states: ⟨left, left, right⟩ and ⟨left, right, right⟩.
        assert_eq!(out.transitions.len(), 2);
        assert_eq!(out.identity_skipped, 0);
        for t in &out.transitions {
            assert_eq!(t.target, 2);
            assert_eq!(sp.value_at(t.source, 0), 0);
            assert_eq!(sp.value_at(t.source, 2), 1);
            assert_ne!(sp.value_at(t.source, 1), 2);
        }
    }

    #[test]
    fn identity_writes_are_skipped_and_counted() {
        let d = Domain::numeric("x", 2);
        let loc = Locality::unidirectional();
        let sp = LocalStateSpace::new(&d, loc);
        // Copies the predecessor unconditionally: identity on agreeing states.
        let gc = GuardedCommand::parse("x[r] >= 0 -> x[r] := x[r-1]", &d, loc).unwrap();
        let out = gc.expand(&sp, loc, &d).unwrap();
        assert_eq!(out.transitions.len(), 2);
        assert_eq!(out.identity_skipped, 2);
    }

    #[test]
    fn out_of_domain_write_is_an_error() {
        let d = Domain::numeric("x", 2);
        let loc = Locality::unidirectional();
        let sp = LocalStateSpace::new(&d, loc);
        let gc = GuardedCommand::parse("x[r] == 0 -> x[r] := x[r] + 2", &d, loc).unwrap();
        let e = gc.expand(&sp, loc, &d).unwrap_err();
        assert!(e.to_string().contains("outside domain"));
    }

    #[test]
    fn nondeterministic_alternatives_expand_to_multiple_transitions() {
        let d = Domain::named("m", ["left", "right", "self"]);
        let loc = Locality::bidirectional();
        let sp = LocalStateSpace::new(&d, loc);
        let gc = GuardedCommand::parse(
            "m[r-1] == self && m[r] == self && m[r+1] == self -> m[r] := right | left",
            &d,
            loc,
        )
        .unwrap();
        let out = gc.expand(&sp, loc, &d).unwrap();
        assert_eq!(out.transitions.len(), 2);
        let targets: Vec<u8> = out.transitions.iter().map(|t| t.target).collect();
        assert!(targets.contains(&0) && targets.contains(&1));
    }

    #[test]
    fn display_roundtrips_source() {
        let d = Domain::numeric("x", 2);
        let loc = Locality::unidirectional();
        let src = "x[r-1] == 1 && x[r] == 0 -> x[r] := 1";
        let gc = GuardedCommand::parse(src, &d, loc).unwrap();
        assert_eq!(gc.to_string(), src);
    }
}

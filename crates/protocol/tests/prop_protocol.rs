//! Property-based tests for the protocol model and DSL.

use proptest::prelude::*;
use selfstab_protocol::{
    parser::parse_expr, Domain, GuardedCommand, LocalStateSpace, LocalTransition, Locality,
    Protocol,
};

fn arb_locality() -> impl Strategy<Value = Locality> {
    prop_oneof![
        Just(Locality::unidirectional()),
        Just(Locality::bidirectional()),
        Just(Locality::new(2, 0)),
        Just(Locality::new(0, 1)),
    ]
}

proptest! {
    /// encode/decode are mutually inverse over the whole space.
    #[test]
    fn codec_roundtrip(d in 2usize..6, loc in arb_locality()) {
        let domain = Domain::numeric("x", d);
        let sp = LocalStateSpace::new(&domain, loc);
        for id in sp.ids() {
            let w = sp.decode(id);
            prop_assert_eq!(sp.encode(&w), id);
            for (pos, &v) in w.iter().enumerate() {
                prop_assert_eq!(sp.value_at(id, pos), v);
            }
        }
    }

    /// with_value really is a point update.
    #[test]
    fn with_value_point_update(
        d in 2usize..5,
        loc in arb_locality(),
        seed in any::<u32>(),
        v in 0u8..5,
        pos_seed in any::<usize>(),
    ) {
        let domain = Domain::numeric("x", d);
        let sp = LocalStateSpace::new(&domain, loc);
        let id = selfstab_protocol::LocalStateId(seed % sp.len() as u32);
        let pos = pos_seed % sp.width();
        let v = v % d as u8;
        let id2 = sp.with_value(id, pos, v);
        let w1 = sp.decode(id);
        let w2 = sp.decode(id2);
        for i in 0..sp.width() {
            if i == pos {
                prop_assert_eq!(w2[i], v);
            } else {
                prop_assert_eq!(w2[i], w1[i]);
            }
        }
    }

    /// The right-continuation relation agrees with a direct window check.
    #[test]
    fn continuation_matches_windows(d in 2usize..5, loc in arb_locality(), a in any::<u32>(), b in any::<u32>()) {
        let domain = Domain::numeric("x", d);
        let sp = LocalStateSpace::new(&domain, loc);
        let a = selfstab_protocol::LocalStateId(a % sp.len() as u32);
        let b = selfstab_protocol::LocalStateId(b % sp.len() as u32);
        let ov = loc.overlap();
        let wa = sp.decode(a);
        let wb = sp.decode(b);
        let direct = wa[sp.width() - ov..] == wb[..ov];
        prop_assert_eq!(sp.is_right_continuation(a, b, ov), direct);
    }

    /// Transition display parses back to the same single transition.
    #[test]
    fn transition_display_roundtrip(d in 2usize..5, loc in arb_locality(), seed in any::<u32>(), t in 0u8..5) {
        let domain = Domain::numeric("x", d);
        let sp = LocalStateSpace::new(&domain, loc);
        let source = selfstab_protocol::LocalStateId(seed % sp.len() as u32);
        let t = t % d as u8;
        prop_assume!(sp.value_at(source, loc.center()) != t);
        let tr = LocalTransition::new(source, t);
        let text = tr.display(&sp, loc, &domain);
        let gc = GuardedCommand::parse(&text, &domain, loc).unwrap();
        let out = gc.expand(&sp, loc, &domain).unwrap();
        prop_assert_eq!(out.transitions, vec![tr]);
        prop_assert_eq!(out.identity_skipped, 0);
    }

    /// An action's expansion contains exactly the guard-satisfying states.
    #[test]
    fn expansion_matches_guard(d in 2usize..4, a in 0u8..4, b in 0u8..4) {
        let domain = Domain::numeric("x", d);
        let loc = Locality::unidirectional();
        let sp = LocalStateSpace::new(&domain, loc);
        let a = a % d as u8;
        let b = b % d as u8;
        let src = format!("x[r-1] == {a} && x[r] != {b} -> x[r] := {b}");
        let gc = GuardedCommand::parse(&src, &domain, loc).unwrap();
        let out = gc.expand(&sp, loc, &domain).unwrap();
        let expected: Vec<LocalTransition> = sp
            .ids()
            .filter(|&id| sp.value_at(id, 0) == a && sp.value_at(id, 1) != b)
            .map(|id| LocalTransition::new(id, b))
            .collect();
        prop_assert_eq!(out.transitions, expected);
    }

    /// Deadlocks and enabled states partition the local state space.
    #[test]
    fn deadlocks_complement_enabled(d in 2usize..4, arcs in proptest::collection::vec((any::<u32>(), 0u8..4), 0..12)) {
        let domain = Domain::numeric("x", d);
        let loc = Locality::unidirectional();
        let base = Protocol::builder("p", domain, loc).legit_all().build().unwrap();
        let sp = *base.space();
        let ts: Vec<LocalTransition> = arcs
            .into_iter()
            .map(|(s, t)| LocalTransition::new(selfstab_protocol::LocalStateId(s % sp.len() as u32), t % d as u8))
            .filter(|t| sp.value_at(t.source, loc.center()) != t.target)
            .collect();
        let p = base.with_transitions("p", ts).unwrap();
        let dl = p.local_deadlocks();
        let en = p.enabled_states();
        prop_assert_eq!(dl.len() + en.len(), sp.len());
        prop_assert!(dl.and(&en).is_empty());
        for id in sp.ids() {
            prop_assert_eq!(p.is_enabled(id), en.holds(id));
        }
    }

    /// Summarized guarded commands expand back to exactly the original
    /// transition set (the cube merger is faithful).
    #[test]
    fn summary_roundtrip(d in 2usize..5, arcs in proptest::collection::vec((any::<u32>(), 0u8..5), 0..20)) {
        let domain = Domain::numeric("x", d);
        let loc = Locality::unidirectional();
        let base = Protocol::builder("p", domain, loc).legit_all().build().unwrap();
        let sp = *base.space();
        let ts: Vec<LocalTransition> = arcs
            .into_iter()
            .map(|(s, t)| LocalTransition::new(selfstab_protocol::LocalStateId(s % sp.len() as u32), t % d as u8))
            .filter(|t| sp.value_at(t.source, loc.center()) != t.target)
            .collect();
        let p = base.with_transitions("p", ts).unwrap();
        let lines = selfstab_protocol::display::summarize_transitions(&p);
        let expanded = selfstab_protocol::display::expand_summary(&p, &lines).unwrap();
        let mut original: Vec<LocalTransition> = p.transitions().collect();
        original.sort_unstable();
        prop_assert_eq!(expanded, original);
    }

    /// Parsed expressions never panic on evaluation over valid windows.
    #[test]
    fn guard_eval_total(d in 2usize..4, s in "[01x+%()r\\[\\]=!&|<> -]{0,24}") {
        let domain = Domain::numeric("x", d);
        let loc = Locality::unidirectional();
        if let Ok(e) = parse_expr(&s, &domain, loc) {
            let sp = LocalStateSpace::new(&domain, loc);
            for id in sp.ids() {
                let w = sp.decode(id);
                let _ = e.eval(&w, loc); // must not panic
            }
        }
    }
}

proptest! {
    /// The `.stab` file parser never panics, whatever the input.
    #[test]
    fn protocol_file_parser_total(src in "\\PC{0,300}") {
        let _ = selfstab_protocol::file::parse_protocol_file(&src);
    }

    /// Structured-ish random files: either parse or produce a line-numbered
    /// error, never a panic.
    #[test]
    fn protocol_file_parser_structured(
        name in "[a-z]{1,8}",
        dsize in 2usize..5,
        body in proptest::collection::vec("[a-z0-9\\[\\]()=!&|<>%+: -]{0,40}", 0..6),
    ) {
        let mut src = format!("protocol {name}\ndomain x {{ ");
        for v in 0..dsize {
            src.push_str(&format!("{v} "));
        }
        src.push_str("}\nlocality unidirectional\nlegit x[r] == x[r-1]\n");
        for line in &body {
            src.push_str(&format!("action {line}\n"));
        }
        match selfstab_protocol::file::parse_protocol_file(&src) {
            Ok(p) => prop_assert_eq!(p.name(), name),
            Err(e) => prop_assert!(e.to_string().contains("line "), "error lacks line number: {e}"),
        }
    }
}

proptest! {
    /// Cube-merged summaries are faithful on bidirectional windows too.
    #[test]
    fn summary_roundtrip_bidirectional(d in 2usize..4, arcs in proptest::collection::vec((any::<u32>(), 0u8..4), 0..24)) {
        let domain = Domain::numeric("x", d);
        let loc = Locality::bidirectional();
        let base = Protocol::builder("p", domain, loc).legit_all().build().unwrap();
        let sp = *base.space();
        let ts: Vec<LocalTransition> = arcs
            .into_iter()
            .map(|(s, t)| LocalTransition::new(selfstab_protocol::LocalStateId(s % sp.len() as u32), t % d as u8))
            .filter(|t| sp.value_at(t.source, loc.center()) != t.target)
            .collect();
        let p = base.with_transitions("p", ts).unwrap();
        let lines = selfstab_protocol::display::summarize_transitions(&p);
        let expanded = selfstab_protocol::display::expand_summary(&p, &lines).unwrap();
        let mut original: Vec<LocalTransition> = p.transitions().collect();
        original.sort_unstable();
        prop_assert_eq!(expanded, original);
    }

    /// `.stab` rendering round-trips for random protocols with extensional
    /// (non-DSL) legitimate predicates.
    #[test]
    fn stab_render_roundtrip_extensional(d in 2usize..4, legit in proptest::collection::vec(any::<bool>(), 9), arcs in proptest::collection::vec((any::<u32>(), 0u8..4), 0..10)) {
        let domain = Domain::numeric("x", d);
        let loc = Locality::unidirectional();
        let n = d * d;
        if !(0..n).any(|i| legit[i % legit.len()]) {
            return Ok(());
        }
        let base = Protocol::builder("p", domain, loc)
            .legit_fn(|id, _| legit[id.index() % legit.len()])
            .build()
            .unwrap();
        let sp = *base.space();
        let ts: Vec<LocalTransition> = arcs
            .into_iter()
            .map(|(s, t)| LocalTransition::new(selfstab_protocol::LocalStateId(s % sp.len() as u32), t % d as u8))
            .filter(|t| sp.value_at(t.source, loc.center()) != t.target)
            .collect();
        let p = base.with_transitions("p", ts).unwrap();
        let rendered = selfstab_protocol::file::render_protocol_file(&p);
        let q = selfstab_protocol::file::parse_protocol_file(&rendered).unwrap();
        prop_assert_eq!(p.transitions().collect::<Vec<_>>(), q.transitions().collect::<Vec<_>>());
        prop_assert_eq!(p.legit(), q.legit());
    }
}

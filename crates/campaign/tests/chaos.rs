//! The chaos property: **interrupt anywhere, resume, converge**.
//!
//! A campaign is driven through rounds of seeded fault injection — worker
//! panics inside the `catch_unwind` net, forced cancellations through the
//! interrupt token, and torn-write truncation of the journal between
//! rounds — and then allowed to finish fault-free. The final rendered
//! report must be **byte-identical** to the report of a run that never saw
//! a fault. This is the toolchain-level mirror of the paper's convergence
//! property: from any reachable (faulty) configuration, the system returns
//! to the legitimate set and stays there.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use selfstab_campaign::{run_campaign, CampaignConfig, ChaosPlan, Manifest};
use selfstab_global::{CancelToken, SymmetryMode};

const SPECS: [&str; 6] = [
    "specs/agreement.stab",
    "specs/agreement_both.stab",
    "specs/flip_token.stab",
    "specs/mis.stab",
    "specs/sum_not_two.stab",
    "specs/three_coloring.stab",
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A random small campaign over a non-empty spec subset (no wall-clock
/// deadline: the chaos suite pins byte-level determinism).
fn arb_manifest() -> impl Strategy<Value = Manifest> {
    (1u32..63, 2usize..=3, 0usize..=1).prop_map(|(mask, k_from, k_extra)| {
        let specs: Vec<String> = SPECS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, s)| format!("\"{s}\""))
            .collect();
        let text = format!(
            r#"{{"specs": [{}], "k_from": {k_from}, "k_to": {}, "max_states": 4096}}"#,
            specs.join(", "),
            k_from + k_extra,
        );
        Manifest::from_json_text(&text, &repo_root()).expect("generated manifest parses")
    })
}

fn fresh_journal() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("selfstab-chaos-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}.jsonl", NEXT.fetch_add(1, Ordering::Relaxed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chaos rounds (injected panics, forced cancels, torn journal tails)
    /// followed by fault-free rounds always converge to the byte-identical
    /// fault-free report.
    #[test]
    fn chaotic_runs_converge_to_the_fault_free_report(
        manifest in arb_manifest(),
        seed in 0u64..1_000_000,
    ) {
        // The fault-free reference, computed without any journal.
        let reference = run_campaign(&manifest, &CampaignConfig::default()).unwrap();

        let journal_path = fresh_journal();
        let mut final_report = None;
        // Bounded by construction: each plan injects finitely many faults,
        // and from round 3 on no new faults are injected, so the first
        // uninterrupted run completes the whole matrix.
        for round in 0u64..16 {
            let chaotic = round < 3;
            let outcome = run_campaign(
                &manifest,
                &CampaignConfig {
                    workers: 2,
                    journal_path: Some(journal_path.clone()),
                    resume: round > 0,
                    retries: 1,
                    backoff: Duration::ZERO,
                    interrupt: Some(Arc::new(CancelToken::new())),
                    chaos: chaotic.then(|| ChaosPlan::from_seed(seed.wrapping_add(round))),
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
            if chaotic {
                // Torn-write injection between rounds: chop the journal at
                // a seeded byte offset. Replay must absorb the torn tail.
                ChaosPlan::truncate_journal(&journal_path, seed ^ round).unwrap();
            } else if !outcome.interrupted {
                final_report = Some(outcome.rendered_report);
                break;
            }
        }
        std::fs::remove_file(&journal_path).ok();
        let final_report = final_report.expect("a fault-free round completed");
        prop_assert_eq!(final_report, reference.rendered_report);
    }

    /// The chaos property holds unchanged under `symmetry: Reduced`: a
    /// sweep interrupted mid-run with the rotation-symmetry reduction
    /// engaged resumes to the byte-identical fault-free reduced report —
    /// which is itself byte-identical to the default-mode report, so the
    /// reduction never leaks into the journal/resume story.
    #[test]
    fn reduced_chaotic_runs_converge_to_the_fault_free_report(
        manifest in arb_manifest(),
        seed in 0u64..1_000_000,
    ) {
        let reference = run_campaign(
            &manifest,
            &CampaignConfig {
                symmetry: Some(SymmetryMode::Reduced),
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        let default_mode = run_campaign(&manifest, &CampaignConfig::default()).unwrap();
        prop_assert_eq!(&reference.rendered_report, &default_mode.rendered_report);

        let journal_path = fresh_journal();
        let mut final_report = None;
        for round in 0u64..16 {
            let chaotic = round < 3;
            let outcome = run_campaign(
                &manifest,
                &CampaignConfig {
                    workers: 2,
                    symmetry: Some(SymmetryMode::Reduced),
                    journal_path: Some(journal_path.clone()),
                    resume: round > 0,
                    retries: 1,
                    backoff: Duration::ZERO,
                    interrupt: Some(Arc::new(CancelToken::new())),
                    chaos: chaotic.then(|| ChaosPlan::from_seed(seed.wrapping_add(round).rotate_left(7))),
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
            if chaotic {
                ChaosPlan::truncate_journal(&journal_path, seed ^ round).unwrap();
            } else if !outcome.interrupted {
                final_report = Some(outcome.rendered_report);
                break;
            }
        }
        std::fs::remove_file(&journal_path).ok();
        let final_report = final_report.expect("a fault-free round completed");
        prop_assert_eq!(final_report, reference.rendered_report);
    }
}

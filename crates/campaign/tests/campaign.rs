//! End-to-end campaign tests over the real `specs/` corpus.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use selfstab_campaign::{
    journal, report, run_campaign, CampaignConfig, ChaosPlan, Manifest, Outcome,
};
use selfstab_global::CancelToken;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn manifest(text: &str) -> Manifest {
    Manifest::from_json_text(text, &repo_root()).expect("test manifest parses")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("selfstab-campaign-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

const CORPUS: &str = r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 5}"#;

#[test]
fn corpus_campaign_covers_the_whole_matrix() {
    let m = manifest(CORPUS);
    let outcome = run_campaign(&m, &CampaignConfig::default()).unwrap();
    assert_eq!(outcome.results.len(), m.specs.len() * 4);
    assert_eq!(outcome.executed, outcome.results.len());
    // The corpus contains both stabilizing and failing protocols.
    assert!(outcome.report["totals"]["verified"].as_u64().unwrap() > 0);
    assert!(outcome.report["totals"]["failed"].as_u64().unwrap() > 0);
    assert_eq!(outcome.report["totals"]["error"], 0u64);
    // Local soundness: no locally-proven spec may fail globally.
    assert_eq!(
        outcome.report["soundness"]["disagreements"]
            .as_array()
            .unwrap()
            .len(),
        0
    );
    // Results arrive in manifest order: specs sorted, K ascending.
    let jobs = outcome.report["jobs"].as_array().unwrap();
    let cells: Vec<(String, u64)> = jobs
        .iter()
        .map(|j| {
            (
                j["spec"].as_str().unwrap().to_owned(),
                j["k"].as_u64().unwrap(),
            )
        })
        .collect();
    let mut expected = Vec::new();
    for spec in &m.specs {
        for k in 2..=5u64 {
            expected.push((spec.clone(), k));
        }
    }
    assert_eq!(cells, expected);
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let m = manifest(CORPUS);
    let base = run_campaign(&m, &CampaignConfig::default()).unwrap();
    for workers in [2, 4] {
        let config = CampaignConfig {
            workers,
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(&m, &config).unwrap();
        assert_eq!(
            outcome.rendered_report, base.rendered_report,
            "report diverged at {workers} workers"
        );
    }
    // Engine-thread parallelism inside each job must not change it either.
    let config = CampaignConfig {
        workers: 2,
        engine_threads: Some(3),
        ..CampaignConfig::default()
    };
    let outcome = run_campaign(&m, &config).unwrap();
    assert_eq!(outcome.rendered_report, base.rendered_report);
}

#[test]
fn over_budget_jobs_degrade_without_aborting() {
    // 3^5 = 243 > 128, so the d=3 specs blow the budget at K=5 while the
    // d=2 specs (2^5 = 32) still verify.
    let m = manifest(r#"{"specs": ["specs/*.stab"], "k_from": 5, "k_to": 5, "max_states": 128}"#);
    let outcome = run_campaign(&m, &CampaignConfig::default()).unwrap();
    let over: Vec<&str> = outcome
        .results
        .iter()
        .filter(|r| matches!(&r.outcome, Outcome::OverBudget { reason } if reason == "states"))
        .map(|r| r.spec.as_str())
        .collect();
    assert!(
        over.contains(&"specs/sum_not_two.stab"),
        "expected the ternary specs over budget, got {over:?}"
    );
    assert!(outcome.report["totals"]["verified"].as_u64().unwrap() > 0);
    assert_eq!(
        outcome.report["totals"]["over_budget"].as_u64().unwrap() as usize,
        over.len()
    );
    // Over-budget rows report zero swept states.
    for r in &outcome.results {
        if matches!(r.outcome, Outcome::OverBudget { .. }) {
            assert_eq!((r.states, r.legit), (0, 0));
        }
    }
}

#[test]
fn journal_resume_reexecutes_only_the_remainder() {
    let m = manifest(CORPUS);
    let journal_path = tmp("resume.jsonl");

    // Uninterrupted baseline.
    let full = run_campaign(
        &m,
        &CampaignConfig {
            journal_path: Some(journal_path.clone()),
            ..CampaignConfig::default()
        },
    )
    .unwrap();

    // Simulate an interrupt: keep only a prefix of the journal.
    let text = std::fs::read_to_string(&journal_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 3;
    std::fs::write(&journal_path, format!("{}\n", lines[..keep].join("\n"))).unwrap();
    let replayed = journal::replay(&journal_path).unwrap();
    let done = replayed.completed.len();
    assert!(done < full.results.len(), "prefix must leave work to do");

    let resumed = run_campaign(
        &m,
        &CampaignConfig {
            journal_path: Some(journal_path.clone()),
            resume: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.executed, full.results.len() - done);
    assert_eq!(resumed.rendered_report, full.rendered_report);

    // Resuming a *complete* journal executes nothing and still reproduces
    // the identical report.
    let idle = run_campaign(
        &m,
        &CampaignConfig {
            journal_path: Some(journal_path),
            resume: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert_eq!(idle.executed, 0);
    assert_eq!(idle.rendered_report, full.rendered_report);
}

#[test]
fn resume_refuses_a_foreign_journal() {
    let m = manifest(CORPUS);
    let journal_path = tmp("foreign.jsonl");
    std::fs::write(
        &journal_path,
        journal::frame(&journal::campaign_event("0000000000000000", 1)),
    )
    .unwrap();
    let err = run_campaign(
        &m,
        &CampaignConfig {
            journal_path: Some(journal_path),
            resume: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("different campaign"), "{err}");
}

#[test]
fn unreadable_spec_becomes_an_error_outcome() {
    let dir = tmp("missing-spec-dir");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("broken.stab"),
        "protocol broken\nnot a declaration\n",
    )
    .unwrap();
    let m = Manifest::from_json_text(
        r#"{"specs": ["broken.stab", "missing.stab"], "k_from": 2, "k_to": 3}"#,
        &dir,
    )
    .unwrap();
    let outcome = run_campaign(&m, &CampaignConfig::default()).unwrap();
    assert_eq!(outcome.results.len(), 4);
    assert!(outcome
        .results
        .iter()
        .all(|r| matches!(r.outcome, Outcome::Error { .. })));
    assert_eq!(outcome.report["totals"]["error"], 4u64);
    assert!(!report::is_clean(&outcome.report));
    assert_eq!(
        outcome.report["soundness"]["local_verdicts"]["broken.stab"],
        "error"
    );
}

#[test]
fn always_panicking_job_fails_after_retries_instead_of_aborting() {
    // The acceptance adversary: every attempt of every job panics. The
    // sweep must complete (no pool abort), mark each job failed with
    // `retries + 1` attempts, and journal only telemetry — never a
    // `finished` event — so a later resume retries from scratch.
    let m = manifest(r#"{"specs": ["specs/agreement.stab"], "k_from": 2, "k_to": 4}"#);
    let journal_path = tmp("always-panic.jsonl");
    let retries = 2u32;
    let outcome = run_campaign(
        &m,
        &CampaignConfig {
            workers: 2,
            journal_path: Some(journal_path.clone()),
            retries,
            backoff: Duration::ZERO,
            chaos: Some(ChaosPlan::always_panic()),
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.results.len(), 3);
    for r in &outcome.results {
        assert!(
            matches!(
                &r.outcome,
                Outcome::Panicked { attempts, message }
                    if *attempts == (retries as u64 + 1) && message.contains("chaos")
            ),
            "got {:?}",
            r.outcome
        );
    }
    assert_eq!(
        outcome.report["totals"]["failed"].as_u64().unwrap(),
        3,
        "panicked jobs count as failed so the sweep exits 2"
    );
    assert!(!report::is_clean(&outcome.report));
    assert_eq!(outcome.panics_caught, 3 * (retries as u64 + 1));
    // Panicked jobs are a toolchain fault, not a verdict: they never count
    // as soundness disagreements.
    assert_eq!(
        outcome.report["soundness"]["disagreements"]
            .as_array()
            .unwrap()
            .len(),
        0
    );

    let replayed = journal::replay(&journal_path).unwrap();
    assert_eq!(
        replayed.completed.len(),
        0,
        "no finished events for panicked-out jobs"
    );
    assert_eq!(
        replayed.panics.values().sum::<u64>(),
        3 * (retries as u64 + 1)
    );

    // A resume without the chaos plan re-runs everything and converges to
    // the fault-free report.
    let reference = run_campaign(&m, &CampaignConfig::default()).unwrap();
    let healed = run_campaign(
        &m,
        &CampaignConfig {
            journal_path: Some(journal_path),
            resume: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert_eq!(healed.executed, 3);
    assert_eq!(healed.rendered_report, reference.rendered_report);
}

#[test]
fn a_fired_interrupt_token_stops_the_sweep_resumably() {
    let m = manifest(CORPUS);
    let journal_path = tmp("interrupted.jsonl");
    let token = Arc::new(CancelToken::new());
    token.cancel(); // SIGINT before the first job
    let outcome = run_campaign(
        &m,
        &CampaignConfig {
            journal_path: Some(journal_path.clone()),
            interrupt: Some(token),
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert!(outcome.interrupted);
    assert_eq!(outcome.executed, 0);
    assert!(outcome.results.is_empty());

    // The journal is valid and resumable: a fresh run completes the matrix
    // and matches the never-interrupted reference byte for byte.
    let reference = run_campaign(&m, &CampaignConfig::default()).unwrap();
    let resumed = run_campaign(
        &m,
        &CampaignConfig {
            journal_path: Some(journal_path),
            resume: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert!(!resumed.interrupted);
    assert_eq!(resumed.rendered_report, reference.rendered_report);
}

#[test]
fn deadline_degrades_to_over_budget() {
    // A zero-millisecond deadline fires before any chunk completes, so
    // every job that actually runs degrades to OverBudget("deadline").
    let m = manifest(
        r#"{"specs": ["specs/sum_not_two.stab"], "k_from": 8, "k_to": 8, "timeout_ms": 0}"#,
    );
    let outcome = run_campaign(&m, &CampaignConfig::default()).unwrap();
    assert_eq!(outcome.results.len(), 1);
    assert!(
        matches!(&outcome.results[0].outcome, Outcome::OverBudget { reason } if reason == "deadline"),
        "got {:?}",
        outcome.results[0].outcome
    );
}

//! Property tests for campaign determinism: the rendered report is a pure
//! function of the manifest — independent of worker count and of where an
//! interrupt lands in the journal.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use selfstab_campaign::{run_campaign, CampaignConfig, Manifest};

const SPECS: [&str; 10] = [
    "specs/agreement.stab",
    "specs/agreement_both.stab",
    "specs/agreement_empty.stab",
    "specs/flip_token.stab",
    "specs/matching_generalizable.stab",
    "specs/matching_non_generalizable.stab",
    "specs/mis.stab",
    "specs/sum_not_two.stab",
    "specs/sum_not_two_empty.stab",
    "specs/three_coloring.stab",
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A random small campaign: a non-empty spec subset, a K-range, and a
/// state budget that sometimes pushes jobs over budget. No wall-clock
/// deadline — deadlines are the one deliberately nondeterministic budget.
fn arb_manifest() -> impl Strategy<Value = Manifest> {
    (1u32..1023, 2usize..=4, 0usize..=2, 0usize..3).prop_map(|(mask, k_from, k_extra, budget)| {
        let specs: Vec<String> = SPECS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, s)| format!("\"{s}\""))
            .collect();
        let max_states = [64u64, 256, 1 << 20][budget];
        let text = format!(
            r#"{{"specs": [{}], "k_from": {k_from}, "k_to": {}, "max_states": {max_states}}}"#,
            specs.join(", "),
            k_from + k_extra,
        );
        Manifest::from_json_text(&text, &repo_root()).expect("generated manifest parses")
    })
}

fn fresh_journal() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("selfstab-prop-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}.jsonl", NEXT.fetch_add(1, Ordering::Relaxed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interrupting a campaign after a random prefix of journal lines and
    /// resuming yields a report byte-identical to the uninterrupted run.
    #[test]
    fn resume_after_random_interrupt_is_byte_identical(
        manifest in arb_manifest(),
        cut in 0u32..1000,
    ) {
        let journal_path = fresh_journal();
        let full = run_campaign(
            &manifest,
            &CampaignConfig {
                workers: 2,
                journal_path: Some(journal_path.clone()),
                ..CampaignConfig::default()
            },
        )
        .unwrap();

        // Cut the journal at a random line boundary (plus a ragged
        // half-line beyond it, which replay must skip).
        let text = std::fs::read_to_string(&journal_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let keep = (cut as usize * lines.len()) / 1000;
        let mut prefix = lines[..keep].join("\n");
        prefix.push('\n');
        if let Some(cropped) = lines.get(keep).and_then(|l| l.get(..l.len() / 2)) {
            prefix.push_str(cropped);
        }
        std::fs::write(&journal_path, prefix).unwrap();

        let resumed = run_campaign(
            &manifest,
            &CampaignConfig {
                workers: 2,
                journal_path: Some(journal_path.clone()),
                resume: true,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        std::fs::remove_file(&journal_path).ok();
        prop_assert_eq!(resumed.rendered_report, full.rendered_report);
    }

    /// The rendered report does not depend on the worker count.
    #[test]
    fn report_is_worker_count_invariant(manifest in arb_manifest()) {
        let base = run_campaign(&manifest, &CampaignConfig::default()).unwrap();
        for workers in [2, 4] {
            let outcome = run_campaign(
                &manifest,
                &CampaignConfig { workers, ..CampaignConfig::default() },
            )
            .unwrap();
            prop_assert_eq!(&outcome.rendered_report, &base.rendered_report);
        }
    }

    /// The metrics document's per-job engine counters (and outcomes, and
    /// state counts) are a pure function of the manifest — identical for
    /// every worker count and engine thread count. Durations, attempts
    /// and scheduling stats are exempt by construction: they live in
    /// fields this projection does not read.
    #[test]
    fn metric_counters_are_scheduling_invariant(manifest in arb_manifest()) {
        let deterministic_rows = |workers: usize, engine_threads: Option<usize>| {
            let metrics = run_campaign(
                &manifest,
                &CampaignConfig {
                    workers,
                    engine_threads,
                    telemetry: true,
                    ..CampaignConfig::default()
                },
            )
            .unwrap()
            .metrics
            .expect("telemetry produces metrics");
            metrics["jobs"]
                .as_array()
                .expect("metrics has a jobs array")
                .iter()
                .map(|row| {
                    format!(
                        "{}|{}|{}|{}|{}",
                        row["spec"], row["k"], row["outcome"], row["states"], row["counters"]
                    )
                })
                .collect::<Vec<String>>()
        };
        let base = deterministic_rows(1, None);
        prop_assert!(!base.is_empty());
        for (workers, threads) in [(2, None), (4, Some(2))] {
            prop_assert_eq!(
                &deterministic_rows(workers, threads),
                &base,
                "counters diverged at workers={} threads={:?}",
                workers,
                threads
            );
        }
    }
}

//! Campaign telemetry tests: metrics shape, counter determinism, panicked
//! rows carrying their phase breakdown, trace export, and the progress
//! sink.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use selfstab_campaign::{journal, run_campaign, CampaignConfig, ChaosPlan, Manifest};
use selfstab_telemetry::Progress;
use serde_json::Value;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn manifest(text: &str) -> Manifest {
    Manifest::from_json_text(text, &repo_root()).expect("test manifest parses")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("selfstab-telemetry-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

const SMALL: &str =
    r#"{"specs": ["specs/agreement.stab", "specs/agreement_both.stab"], "k_from": 2, "k_to": 4}"#;

/// The deterministic projection of one metrics job row: everything except
/// durations and attempt bookkeeping.
fn deterministic_rows(metrics: &Value) -> Vec<String> {
    metrics["jobs"]
        .as_array()
        .expect("metrics has a jobs array")
        .iter()
        .map(|row| {
            format!(
                "{}|{}|{}|{}|{}",
                row["spec"], row["k"], row["outcome"], row["states"], row["counters"]
            )
        })
        .collect()
}

#[test]
fn metrics_document_has_the_canonical_shape() {
    let m = manifest(SMALL);
    let outcome = run_campaign(
        &m,
        &CampaignConfig {
            telemetry: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert!(outcome.trace.is_none(), "no trace unless asked");
    let metrics = outcome.metrics.expect("telemetry produces metrics");

    // Campaign section.
    assert_eq!(metrics["campaign"]["jobs"], 6u64);
    assert_eq!(metrics["campaign"]["executed"], 6u64);
    assert_eq!(metrics["campaign"]["replayed"], 0u64);
    assert_eq!(metrics["campaign"]["workers"], 1u64);
    assert_eq!(metrics["campaign"]["engine_threads"], 1u64);
    assert!(metrics["campaign"]["fingerprint"].as_str().is_some());

    // Jobs: manifest order, counters present on completed checks, all six
    // phases rendered per job.
    let rows = metrics["jobs"].as_array().unwrap();
    assert_eq!(rows.len(), 6);
    for row in rows {
        assert_eq!(row["attempts"], 1u64);
        let counters = &row["counters"];
        assert_eq!(counters["states_visited"], row["states"]);
        assert!(counters["cancel_polls"].as_u64().unwrap() > 0);
        assert!(row["phases_us"]["fused_scan"].as_u64().is_some());
        assert!(row["phases_us"]["retry_backoff"].as_u64().is_some());
    }

    // Phase totals and scheduling sections exist with the right keys.
    assert!(metrics["phase_totals_us"]["parse"].as_u64().is_some());
    assert!(metrics["phase_totals_us"]["livelock_dfs"]
        .as_u64()
        .is_some());
    let scheduling = &metrics["scheduling"];
    assert_eq!(
        scheduling["counters"]["pool/steals"], 0u64,
        "one worker never steals"
    );
    assert!(
        scheduling["counters"]["engine/closure_checks"]
            .as_u64()
            .unwrap()
            > 0
    );
    assert_eq!(
        scheduling["histograms"]["job/states"]["count"], 6u64,
        "every completed check samples the state histogram"
    );
    assert_eq!(scheduling["histograms"]["pool/queue_depth"]["count"], 6u64);
}

#[test]
fn metric_counters_are_invariant_across_workers_and_engine_threads() {
    let m = manifest(SMALL);
    let run = |workers: usize, engine_threads: Option<usize>| {
        run_campaign(
            &m,
            &CampaignConfig {
                workers,
                engine_threads,
                telemetry: true,
                ..CampaignConfig::default()
            },
        )
        .unwrap()
        .metrics
        .expect("telemetry produces metrics")
    };
    let base = deterministic_rows(&run(1, None));
    for (workers, threads) in [(2, None), (4, None), (1, Some(3)), (3, Some(2))] {
        assert_eq!(
            deterministic_rows(&run(workers, threads)),
            base,
            "counters diverged at workers={workers} threads={threads:?}"
        );
    }
}

#[test]
fn panicked_rows_carry_their_phase_breakdown() {
    let m = manifest(r#"{"specs": ["specs/agreement.stab"], "k_from": 2, "k_to": 3}"#);
    let journal_path = tmp("panicked-phases.jsonl");
    let outcome = run_campaign(
        &m,
        &CampaignConfig {
            retries: 2,
            backoff: Duration::from_millis(1),
            journal_path: Some(journal_path.clone()),
            chaos: Some(ChaosPlan::always_panic()),
            telemetry: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.panics_caught, 6, "2 jobs x 3 attempts");
    let metrics = outcome.metrics.expect("telemetry produces metrics");
    let rows = metrics["jobs"].as_array().unwrap();
    assert_eq!(rows.len(), 2);
    for row in rows {
        assert_eq!(row["outcome"], "failed");
        assert_eq!(row["attempts"], 3u64);
        assert!(row["counters"].is_null(), "no completed check, no counters");
        // The phases burned up to the panic point survive: the retry
        // backoff slept twice and every started/panic event was journaled.
        assert!(
            row["phases_us"]["retry_backoff"].as_u64().unwrap() > 0,
            "retry backoff time recorded: {row}"
        );
        assert!(
            row["phases_us"]["journal_append"].as_u64().is_some(),
            "journal append phase rendered: {row}"
        );
    }
    assert_eq!(metrics["scheduling"]["counters"]["campaign/panics"], 6u64);
    assert_eq!(metrics["scheduling"]["counters"]["campaign/retries"], 4u64);
    std::fs::remove_file(&journal_path).ok();
}

#[test]
fn trace_export_is_a_loadable_chrome_trace() {
    let m = manifest(SMALL);
    let outcome = run_campaign(
        &m,
        &CampaignConfig {
            workers: 2,
            trace: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    // `trace` implies metrics collection.
    assert!(outcome.metrics.is_some());
    let trace = outcome.trace.expect("trace requested");
    assert_eq!(trace["displayTimeUnit"], "ms");
    let events = trace["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty());
    let mut fused = 0;
    for e in events {
        assert!(e["name"].as_str().is_some());
        assert!(e["ts"].as_u64().is_some());
        assert_eq!(e["pid"], 1u64);
        assert!(e["tid"].as_u64().is_some());
        match e["ph"].as_str().unwrap() {
            "X" => assert!(e["dur"].as_u64().is_some()),
            "i" => assert_eq!(e["s"], "t"),
            ph => panic!("unexpected phase type {ph}"),
        }
        if e["name"] == "fused_scan" {
            fused += 1;
            assert!(e["args"]["spec"].as_str().is_some());
            assert!(e["args"]["k"].as_u64().is_some());
        }
    }
    assert_eq!(fused, 6, "one fused_scan span per job");
}

#[test]
fn journal_finished_events_carry_phases_and_still_replay() {
    let m = manifest(SMALL);
    let journal_path = tmp("phases-journal.jsonl");
    run_campaign(
        &m,
        &CampaignConfig {
            journal_path: Some(journal_path.clone()),
            telemetry: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    let text = std::fs::read_to_string(&journal_path).unwrap();
    assert!(
        text.contains("\"phases_us\":{"),
        "finished events carry the per-job phase breakdown"
    );
    // Replay treats the phase breakdown as telemetry: all six jobs resume
    // as completed, so a resumed campaign re-executes nothing.
    let replayed = journal::replay(&journal_path).unwrap();
    assert_eq!(replayed.completed.len(), 6);
    let resumed = run_campaign(
        &m,
        &CampaignConfig {
            journal_path: Some(journal_path.clone()),
            resume: true,
            telemetry: true,
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.executed, 0);
    let metrics = resumed.metrics.expect("telemetry produces metrics");
    assert_eq!(metrics["campaign"]["replayed"], 6u64);
    assert_eq!(metrics["jobs"].as_array().unwrap().len(), 0);
    std::fs::remove_file(&journal_path).ok();
}

#[test]
fn progress_sink_sees_every_executed_job() {
    let m = manifest(SMALL);
    let progress = Arc::new(Progress::new());
    run_campaign(
        &m,
        &CampaignConfig {
            workers: 2,
            progress: Some(Arc::clone(&progress)),
            ..CampaignConfig::default()
        },
    )
    .unwrap();
    let (total, done, failed) = progress.counts();
    assert_eq!(total, 6);
    assert_eq!(done, 6);
    // agreement_both livelocks at every K here, so some jobs fail.
    assert!(failed > 0 && failed < 6, "failed={failed}");
}

//! The canonical campaign report.
//!
//! The report is a pure function of the manifest and the per-job results:
//! jobs appear in manifest order, objects render with sorted keys, and no
//! wall-clock measurement is part of the body — so the rendered document
//! is byte-identical for every worker count and every interrupt/resume
//! split of the same campaign.

use std::collections::BTreeMap;

use serde_json::{json, Value};

use crate::job::{JobResult, LocalVerdict, Outcome};
use crate::manifest::Manifest;

/// Builds the canonical report document.
pub fn build(
    manifest: &Manifest,
    fingerprint: &str,
    results: &[JobResult],
    locals: &BTreeMap<String, LocalVerdict>,
) -> Value {
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut states_swept: u64 = 0;
    let mut cross: BTreeMap<&'static str, BTreeMap<&'static str, u64>> = BTreeMap::new();
    let mut disagreements: Vec<Value> = Vec::new();

    for r in results {
        *totals.entry(r.outcome.tag()).or_default() += 1;
        states_swept += r.states;
        let local = locals.get(&r.spec).unwrap_or(&LocalVerdict::Error);
        let row = match local {
            LocalVerdict::Proven => "local_proven",
            LocalVerdict::Unproven => "local_unproven",
            LocalVerdict::Error => "local_error",
        };
        *cross
            .entry(row)
            .or_default()
            .entry(r.outcome.tag())
            .or_default() += 1;
        // The soundness heart of the matter: the paper's local method is
        // sufficient, so a locally-proven spec must never fail globally.
        if *local == LocalVerdict::Proven && matches!(r.outcome, Outcome::Failed { .. }) {
            disagreements.push(json!({"spec": r.spec.as_str(), "k": r.k}));
        }
    }

    let totals_value = Value::Object(
        ["verified", "failed", "over_budget", "error"]
            .iter()
            .map(|tag| {
                (
                    (*tag).to_owned(),
                    json!(totals.get(tag).copied().unwrap_or(0)),
                )
            })
            .collect(),
    );
    let cross_value = Value::Object(
        ["local_proven", "local_unproven", "local_error"]
            .iter()
            .map(|row| {
                let cells = cross.get(row).cloned().unwrap_or_default();
                let row_value = Value::Object(
                    ["verified", "failed", "over_budget", "error"]
                        .iter()
                        .map(|tag| {
                            (
                                (*tag).to_owned(),
                                json!(cells.get(tag).copied().unwrap_or(0)),
                            )
                        })
                        .collect(),
                );
                ((*row).to_owned(), row_value)
            })
            .collect(),
    );
    let local_verdicts = Value::Object(
        manifest
            .specs
            .iter()
            .map(|spec| {
                let verdict = locals.get(spec).unwrap_or(&LocalVerdict::Error);
                (spec.clone(), json!(verdict.tag()))
            })
            .collect(),
    );

    json!({
        "campaign": {
            "fingerprint": fingerprint,
            "specs": manifest.specs.iter().map(String::as_str).collect::<Vec<_>>(),
            "k_from": manifest.k_from,
            "k_to": manifest.k_to,
            "max_states": manifest.max_states,
            "timeout_ms": manifest.timeout_ms,
            "job_count": results.len(),
        },
        "jobs": Value::Array(results.iter().map(JobResult::report_row).collect::<Vec<_>>()),
        "totals": totals_value,
        "states_swept": states_swept,
        "soundness": {
            "local_verdicts": local_verdicts,
            "cross_tab": cross_value,
            "disagreements": Value::Array(disagreements),
        },
    })
}

/// Renders a report canonically: pretty JSON, sorted keys (guaranteed by
/// the [`Value`] object representation), one trailing newline.
pub fn render(report: &Value) -> String {
    let mut text = serde_json::to_string_pretty(report).expect("report rendering is infallible");
    text.push('\n');
    text
}

/// `true` iff the campaign is clean for CI gating: no job failed
/// verification, no job errored, and no soundness disagreement was found.
/// Over-budget jobs do not taint the verdict — they are inconclusive, not
/// failures.
pub fn is_clean(report: &Value) -> bool {
    report["totals"]["failed"] == 0u64
        && report["totals"]["error"] == 0u64
        && report["soundness"]["disagreements"]
            .as_array()
            .is_some_and(Vec::is_empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn manifest() -> Manifest {
        Manifest {
            base_dir: Path::new(".").to_path_buf(),
            specs: vec!["a.stab".into(), "b.stab".into()],
            k_from: 2,
            k_to: 3,
            max_states: 1024,
            timeout_ms: None,
            engine_threads: 1,
            symmetry: selfstab_global::SymmetryMode::Auto,
            prune: true,
        }
    }

    fn results() -> Vec<JobResult> {
        vec![
            JobResult {
                spec: "a.stab".into(),
                k: 2,
                outcome: Outcome::Verified,
                states: 4,
                legit: 2,
            },
            JobResult {
                spec: "a.stab".into(),
                k: 3,
                outcome: Outcome::Failed {
                    closure_ok: true,
                    deadlocks: 0,
                    livelock_len: Some(6),
                },
                states: 8,
                legit: 2,
            },
            JobResult {
                spec: "b.stab".into(),
                k: 2,
                outcome: Outcome::OverBudget {
                    reason: "states".into(),
                },
                states: 0,
                legit: 0,
            },
            JobResult {
                spec: "b.stab".into(),
                k: 3,
                outcome: Outcome::Verified,
                states: 8,
                legit: 3,
            },
        ]
    }

    #[test]
    fn report_counts_and_cross_tab() {
        let m = manifest();
        let locals = BTreeMap::from([
            ("a.stab".to_string(), LocalVerdict::Proven),
            ("b.stab".to_string(), LocalVerdict::Unproven),
        ]);
        let report = build(&m, "fp", &results(), &locals);
        assert_eq!(report["totals"]["verified"], 2u64);
        assert_eq!(report["totals"]["failed"], 1u64);
        assert_eq!(report["totals"]["over_budget"], 1u64);
        assert_eq!(report["states_swept"], 20u64);
        assert_eq!(
            report["soundness"]["cross_tab"]["local_proven"]["failed"],
            1u64
        );
        assert_eq!(
            report["soundness"]["cross_tab"]["local_unproven"]["over_budget"],
            1u64
        );
        // a.stab is locally proven but fails at K=3: a disagreement.
        let dis = report["soundness"]["disagreements"].as_array().unwrap();
        assert_eq!(dis.len(), 1);
        assert_eq!(dis[0]["spec"], "a.stab");
        assert_eq!(dis[0]["k"], 3u64);
        assert!(!is_clean(&report));
    }

    #[test]
    fn rendering_is_stable() {
        let m = manifest();
        let locals = BTreeMap::from([
            ("a.stab".to_string(), LocalVerdict::Unproven),
            ("b.stab".to_string(), LocalVerdict::Unproven),
        ]);
        let report = build(&m, "fp", &results(), &locals);
        let a = render(&report);
        let b = render(&build(&m, "fp", &results(), &locals));
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        // No wall-clock fields anywhere in the body.
        assert!(!a.contains("duration"));
        assert!(!a.contains("elapsed"));
    }

    #[test]
    fn panicked_jobs_fail_the_sweep_but_are_not_disagreements() {
        // A panicked-out job on a locally-proven spec: the sweep is dirty
        // (exit 2), but a toolchain crash is no *verification* refutation,
        // so the soundness section must stay empty.
        let m = manifest();
        let locals = BTreeMap::from([
            ("a.stab".to_string(), LocalVerdict::Proven),
            ("b.stab".to_string(), LocalVerdict::Proven),
        ]);
        let rs = vec![
            JobResult {
                spec: "a.stab".into(),
                k: 2,
                outcome: Outcome::Verified,
                states: 4,
                legit: 2,
            },
            JobResult {
                spec: "a.stab".into(),
                k: 3,
                outcome: Outcome::Panicked {
                    attempts: 3,
                    message: "chaos: injected worker panic (attempt 2)".into(),
                },
                states: 0,
                legit: 0,
            },
        ];
        let report = build(&m, "fp", &rs, &locals);
        assert_eq!(report["totals"]["failed"], 1u64);
        assert!(!is_clean(&report));
        assert_eq!(
            report["soundness"]["disagreements"]
                .as_array()
                .unwrap()
                .len(),
            0,
            "a panic is not a soundness disagreement"
        );
        assert_eq!(
            report["soundness"]["cross_tab"]["local_proven"]["failed"],
            1u64
        );
        // The row carries the panic detail for diagnosis.
        let row = &report["jobs"][1];
        assert_eq!(row["outcome"], "failed");
        assert_eq!(row["attempts"], 3u64);
        assert!(row["panic"].as_str().unwrap().contains("chaos"));
    }

    #[test]
    fn clean_report_is_clean() {
        let m = manifest();
        let locals = BTreeMap::from([
            ("a.stab".to_string(), LocalVerdict::Proven),
            ("b.stab".to_string(), LocalVerdict::Proven),
        ]);
        let ok: Vec<JobResult> = results()
            .into_iter()
            .map(|mut r| {
                r.outcome = Outcome::Verified;
                r
            })
            .collect();
        let report = build(&m, "fp", &ok, &locals);
        assert!(is_clean(&report));
    }
}

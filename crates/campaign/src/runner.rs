//! Campaign execution: budgets, shared local analysis, resume, merge.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use selfstab_core::report::StabilizationReport;
use selfstab_global::check::ConvergenceReport;
use selfstab_global::{CancelToken, EngineConfig, GlobalError, RingInstance};
use selfstab_protocol::Protocol;
use serde_json::Value;

use crate::job::{JobResult, JobSpec, LocalVerdict, Outcome};
use crate::journal::{self, Journal};
use crate::manifest::Manifest;
use crate::{pool, report};

/// Errors of the campaign subsystem.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem trouble (manifest, spec, or journal IO).
    Io(String),
    /// The manifest is malformed.
    Manifest(String),
    /// The journal cannot be resumed (e.g. fingerprint mismatch).
    Journal(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(m) => write!(f, "{m}"),
            CampaignError::Manifest(m) => write!(f, "manifest error: {m}"),
            CampaignError::Journal(m) => write!(f, "journal error: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Knobs of one campaign invocation (the manifest holds the semantics;
/// this holds the mechanics, none of which can change a verdict).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Job-level worker threads (the work-stealing pool size).
    pub workers: usize,
    /// Override of the manifest's per-job engine threads, if any.
    pub engine_threads: Option<usize>,
    /// Journal file; `None` runs without journaling (not resumable).
    pub journal_path: Option<PathBuf>,
    /// Replay the journal first and run only jobs it does not complete.
    pub resume: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: 1,
            engine_threads: None,
            journal_path: None,
            resume: false,
        }
    }
}

/// Everything a finished campaign hands back.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// All job results in manifest order (resumed and fresh merged).
    pub results: Vec<JobResult>,
    /// Per-spec local verdicts.
    pub locals: BTreeMap<String, LocalVerdict>,
    /// The canonical report document.
    pub report: Value,
    /// The canonical rendering of `report` (pretty JSON + final newline);
    /// byte-identical for every worker count and resume split.
    pub rendered_report: String,
    /// How many jobs actually executed in this invocation (the rest were
    /// replayed from the journal).
    pub executed: usize,
    /// Wall-clock time of this invocation — telemetry only, never part of
    /// `rendered_report`.
    pub elapsed: Duration,
}

/// A spec's shared preparation: parsed protocol + local verdict, computed
/// once per spec and shared by all of its K-jobs, or the error that made
/// the spec unusable.
type SpecData = Result<(Arc<Protocol>, LocalVerdict), String>;

/// Runs (or resumes) the campaign described by `manifest`.
///
/// # Errors
///
/// Returns [`CampaignError`] on journal IO failures or a resume against a
/// journal written by a different manifest. Per-job failures (parse
/// errors, budget exhaustion, failed verification) never abort the
/// campaign — they are recorded as job outcomes.
pub fn run_campaign(
    manifest: &Manifest,
    config: &CampaignConfig,
) -> Result<CampaignOutcome, CampaignError> {
    let started = Instant::now();
    let jobs = manifest.jobs();
    let fingerprint = manifest.fingerprint();

    // Replay the checkpoint.
    let replay = match (&config.journal_path, config.resume) {
        (Some(path), true) => journal::replay(path)?,
        _ => journal::Replay::default(),
    };
    if let Some(fp) = &replay.fingerprint {
        if *fp != fingerprint {
            return Err(CampaignError::Journal(format!(
                "journal was written by a different campaign \
                 (journal fingerprint {fp}, manifest fingerprint {fingerprint}); \
                 delete it or run without --resume"
            )));
        }
    }

    // Open the journal and stamp the header on a fresh file.
    let journal = match &config.journal_path {
        Some(path) if config.resume => Some(Journal::append(path)?),
        Some(path) => Some(Journal::create(path)?),
        None => None,
    };
    if let Some(j) = &journal {
        if replay.fingerprint.is_none() {
            j.event(&journal::campaign_event(&fingerprint, jobs.len()));
        }
    }

    // Queue what the checkpoint does not already complete.
    let pending: Vec<&JobSpec> = jobs
        .iter()
        .filter(|job| !replay.completed.contains_key(&(job.spec.clone(), job.k)))
        .collect();
    if let Some(j) = &journal {
        for job in &pending {
            j.event(&journal::queued_event(&job.spec, job.k));
        }
    }

    // One shared preparation slot per spec: the first worker to need a
    // spec parses and locally analyzes it; every other K-job of that spec
    // reuses the Arc.
    let slots: Vec<OnceLock<SpecData>> =
        (0..manifest.specs.len()).map(|_| OnceLock::new()).collect();
    let engine = EngineConfig::with_threads(
        config
            .engine_threads
            .unwrap_or(manifest.engine_threads)
            .max(1),
    );

    let fresh: Vec<JobResult> = pool::run_jobs(config.workers, pending.len(), |worker, idx| {
        let job = pending[idx];
        if let Some(j) = &journal {
            j.event(&journal::started_event(&job.spec, job.k, worker));
        }
        let job_started = Instant::now();
        let data = slots[job.spec_index].get_or_init(|| {
            let data = prepare_spec(manifest, job.spec_index);
            if let Some(j) = &journal {
                let verdict = match &data {
                    Ok((_, verdict)) => verdict.clone(),
                    Err(_) => LocalVerdict::Error,
                };
                j.event(&journal::analyzed_event(&job.spec, &verdict));
            }
            data
        });
        let result = execute_job(manifest, job, data, &engine);
        if let Some(j) = &journal {
            j.event(&journal::finished_event(
                &result,
                worker,
                job_started.elapsed(),
            ));
        }
        result
    });

    // Merge in manifest order: replayed results win their cell, fresh
    // results fill the rest.
    let mut fresh_by_cell: BTreeMap<(String, usize), JobResult> = fresh
        .into_iter()
        .map(|r| ((r.spec.clone(), r.k), r))
        .collect();
    let executed = fresh_by_cell.len();
    let mut results = Vec::with_capacity(jobs.len());
    for job in &jobs {
        let cell = (job.spec.clone(), job.k);
        let result = replay
            .completed
            .get(&cell)
            .cloned()
            .or_else(|| fresh_by_cell.remove(&cell))
            .expect("every job is replayed or freshly executed");
        results.push(result);
    }

    // Local verdicts: replayed first, then whatever this invocation
    // computed, then a lazy fill for specs whose jobs were all replayed
    // from a journal predating the `analyzed` events.
    let mut locals = replay.locals;
    for (spec_index, slot) in slots.iter().enumerate() {
        if let Some(data) = slot.get() {
            let verdict = match data {
                Ok((_, verdict)) => verdict.clone(),
                Err(_) => LocalVerdict::Error,
            };
            locals.insert(manifest.specs[spec_index].clone(), verdict);
        }
    }
    for (spec_index, spec) in manifest.specs.iter().enumerate() {
        if !locals.contains_key(spec) {
            let verdict = match prepare_spec(manifest, spec_index) {
                Ok((_, verdict)) => verdict,
                Err(_) => LocalVerdict::Error,
            };
            locals.insert(spec.clone(), verdict);
        }
    }

    let report = report::build(manifest, &fingerprint, &results, &locals);
    let rendered_report = report::render(&report);
    Ok(CampaignOutcome {
        results,
        locals,
        report,
        rendered_report,
        executed,
        elapsed: started.elapsed(),
    })
}

/// Parses and locally analyzes one spec (the once-per-spec shared work).
fn prepare_spec(manifest: &Manifest, spec_index: usize) -> SpecData {
    let path = manifest.spec_path(spec_index);
    let source = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let protocol = selfstab_protocol::file::parse_protocol_file(&source)
        .map_err(|e| format!("{}: {e}", manifest.specs[spec_index]))?;
    let local = StabilizationReport::analyze(&protocol);
    let verdict = if local.is_self_stabilizing_for_all_k() {
        LocalVerdict::Proven
    } else {
        LocalVerdict::Unproven
    };
    Ok((Arc::new(protocol), verdict))
}

/// Runs one job within its budgets, degrading gracefully on every failure
/// mode: parse errors, `d^K` over the state budget, and blown deadlines
/// all become outcomes, never panics or campaign aborts.
fn execute_job(
    manifest: &Manifest,
    job: &JobSpec,
    data: &SpecData,
    engine: &EngineConfig,
) -> JobResult {
    let mut result = JobResult {
        spec: job.spec.clone(),
        k: job.k,
        outcome: Outcome::Verified,
        states: 0,
        legit: 0,
    };
    let protocol = match data {
        Ok((protocol, _)) => protocol,
        Err(message) => {
            result.outcome = Outcome::Error {
                message: message.clone(),
            };
            return result;
        }
    };

    // State budget: reject d^K > max_states before allocating anything.
    let d = protocol.domain().size() as u64;
    let within_budget = (d.checked_pow(job.k as u32))
        .map(|states| states <= manifest.max_states)
        .unwrap_or(false);
    if !within_budget {
        result.outcome = Outcome::OverBudget {
            reason: "states".into(),
        };
        return result;
    }
    let ring = match RingInstance::symmetric_with_limit(protocol, job.k, manifest.max_states) {
        Ok(ring) => ring,
        Err(GlobalError::StateSpaceTooLarge { .. }) => {
            result.outcome = Outcome::OverBudget {
                reason: "states".into(),
            };
            return result;
        }
        Err(e) => {
            result.outcome = Outcome::Error {
                message: e.to_string(),
            };
            return result;
        }
    };

    // Wall-clock deadline: cooperative, engine-polled.
    let token = match manifest.timeout_ms {
        Some(ms) => CancelToken::with_deadline(Instant::now() + Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    match ConvergenceReport::check_bounded(&ring, engine, &token) {
        Ok(check) => {
            result.states = check.state_count;
            result.legit = check.legit_count;
            result.outcome = if check.self_stabilizing() {
                Outcome::Verified
            } else {
                Outcome::Failed {
                    closure_ok: check.closure_violation.is_none(),
                    deadlocks: check.illegitimate_deadlocks.len() as u64,
                    livelock_len: check.livelock.as_ref().map(|c| c.len() as u64),
                }
            };
        }
        Err(_) => {
            result.outcome = Outcome::OverBudget {
                reason: "deadline".into(),
            };
        }
    }
    result
}

//! Campaign execution: budgets, shared local analysis, resume, merge —
//! plus the crash-resilience layer: panic isolation with deterministic
//! retry/backoff, cooperative interruption (SIGINT or chaos-injected
//! forced cancel), and journal durability.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use selfstab_core::report::StabilizationReport;
use selfstab_global::engine::{find_livelock_metered, fused_scan_metered};
use selfstab_global::{CancelToken, EngineConfig, GlobalError, RingInstance};
use selfstab_protocol::Protocol;
use selfstab_telemetry::{EngineCounters, Phase, Progress, TraceCollector};
use serde_json::Value;

use crate::chaos::ChaosPlan;
use crate::job::{JobResult, JobSpec, LocalVerdict, Outcome};
use crate::journal::{self, FsyncPolicy, Journal};
use crate::manifest::Manifest;
use crate::telemetry::{timed, CampaignTelemetry, JobScope, JobTelemetry};
use crate::{pool, report};

/// Errors of the campaign subsystem.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem trouble (manifest, spec, or journal IO).
    Io(String),
    /// The manifest is malformed.
    Manifest(String),
    /// The journal cannot be resumed (e.g. fingerprint mismatch).
    Journal(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(m) => write!(f, "{m}"),
            CampaignError::Manifest(m) => write!(f, "manifest error: {m}"),
            CampaignError::Journal(m) => write!(f, "journal error: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Longest exponent of the retry backoff: `backoff * 2^min(attempt, CAP)`.
/// Caps the deterministic schedule so a large `--retries` cannot multiply
/// the base into an overflow or an hours-long sleep.
const BACKOFF_EXPONENT_CAP: u32 = 6;

/// Knobs of one campaign invocation (the manifest holds the semantics;
/// this holds the mechanics, none of which can change a verdict).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Job-level worker threads (the work-stealing pool size).
    pub workers: usize,
    /// Override of the manifest's per-job engine threads, if any.
    pub engine_threads: Option<usize>,
    /// Override of the manifest's rotation-symmetry policy, if any.
    pub symmetry: Option<selfstab_global::SymmetryMode>,
    /// Journal file; `None` runs without journaling (not resumable).
    pub journal_path: Option<PathBuf>,
    /// Replay the journal first and run only jobs it does not complete.
    pub resume: bool,
    /// Retries for transiently-failed (panicked) jobs: a job makes up to
    /// `retries + 1` attempts before degrading to a failed outcome.
    pub retries: u32,
    /// Base delay of the deterministic exponential backoff between retry
    /// attempts (`backoff * 2^attempt`, exponent capped). Pure mechanics:
    /// never recorded in the report.
    pub backoff: Duration,
    /// Journal durability policy (`fsync` per record or batched).
    pub fsync: FsyncPolicy,
    /// External interrupt token. When it fires (a SIGINT hook, a chaos
    /// forced-cancel), in-flight jobs abort via linked per-job tokens,
    /// queued jobs are skipped, the journal is synced, and the outcome
    /// comes back with [`CampaignOutcome::interrupted`] set.
    pub interrupt: Option<Arc<CancelToken>>,
    /// Deterministic fault injection (hidden `--chaos` flag / test API).
    pub chaos: Option<ChaosPlan>,
    /// Collect telemetry (phase times, engine counters, scheduling stats)
    /// into [`CampaignOutcome::metrics`]. Off by default: the job hot path
    /// then runs exactly as before, with no counters allocated.
    pub telemetry: bool,
    /// Additionally record Chrome trace events into
    /// [`CampaignOutcome::trace`]. Implies `telemetry`.
    pub trace: bool,
    /// Live progress sink (the CLI's stderr meter). The runner sets the
    /// total to the number of jobs this invocation will execute and
    /// records each completion; rendering is the caller's business.
    pub progress: Option<Arc<Progress>>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: 1,
            engine_threads: None,
            symmetry: None,
            journal_path: None,
            resume: false,
            retries: 0,
            backoff: Duration::from_millis(50),
            fsync: FsyncPolicy::Batch,
            interrupt: None,
            chaos: None,
            telemetry: false,
            trace: false,
            progress: None,
        }
    }
}

/// Everything a finished campaign hands back.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// All job results in manifest order (resumed and fresh merged). On an
    /// interrupted run, jobs that never completed are absent.
    pub results: Vec<JobResult>,
    /// Per-spec local verdicts.
    pub locals: BTreeMap<String, LocalVerdict>,
    /// The canonical report document (partial if `interrupted`).
    pub report: Value,
    /// The canonical rendering of `report` (pretty JSON + final newline);
    /// byte-identical for every worker count, resume split, retry budget
    /// and fault-injection seed — provided the run was not interrupted.
    pub rendered_report: String,
    /// How many jobs actually executed in this invocation (the rest were
    /// replayed from the journal).
    pub executed: usize,
    /// `true` when the interrupt token fired (SIGINT or chaos cancel)
    /// before every job completed. The journal is synced, so a `--resume`
    /// continues from exactly the completed set; the partial report should
    /// not be published.
    pub interrupted: bool,
    /// Worker panics caught (and isolated) during this invocation —
    /// telemetry, never part of `rendered_report`.
    pub panics_caught: u64,
    /// Wall-clock time of this invocation — telemetry only, never part of
    /// `rendered_report`.
    pub elapsed: Duration,
    /// The metrics document (phase times, engine counters, scheduling
    /// stats) when [`CampaignConfig::telemetry`] was on; `None` otherwise.
    /// Per-job *counter* values are deterministic across worker counts;
    /// durations and scheduling numbers are not and live in separate
    /// sections.
    pub metrics: Option<Value>,
    /// The Chrome trace-event document when [`CampaignConfig::trace`] was
    /// on; `None` otherwise. Loadable in Perfetto / `chrome://tracing`.
    pub trace: Option<Value>,
}

/// A spec's shared preparation: parsed protocol + local verdict, computed
/// once per spec and shared by all of its K-jobs, or the error that made
/// the spec unusable.
type SpecData = Result<(Arc<Protocol>, LocalVerdict), String>;

/// How one job attempt ended, before retry bookkeeping.
enum Attempt {
    /// The job ran to a recordable outcome (including budget exhaustion).
    Done(Box<JobResult>),
    /// The campaign's interrupt token fired mid-job; nothing is recorded
    /// and the job re-executes on resume.
    Interrupted,
}

/// Runs (or resumes) the campaign described by `manifest`.
///
/// Per-job failures degrade instead of aborting: parse errors, budget
/// exhaustion and failed verification become outcomes, and a worker panic
/// is caught (`catch_unwind`), journaled as a `job_panicked` event, and
/// retried up to [`CampaignConfig::retries`] times with deterministic
/// exponential backoff before degrading to a failed outcome.
///
/// # Errors
///
/// Returns [`CampaignError`] on journal IO failures or a resume against a
/// journal written by a different manifest.
pub fn run_campaign(
    manifest: &Manifest,
    config: &CampaignConfig,
) -> Result<CampaignOutcome, CampaignError> {
    let started = Instant::now();
    let jobs = manifest.jobs();
    let fingerprint = manifest.fingerprint();
    let interrupt = config.interrupt.clone();
    let is_interrupted = || interrupt.as_deref().is_some_and(CancelToken::is_cancelled);

    // Replay the checkpoint.
    let replay = match (&config.journal_path, config.resume) {
        (Some(path), true) => journal::replay(path)?,
        _ => journal::Replay::default(),
    };
    if let Some(fp) = &replay.fingerprint {
        if *fp != fingerprint {
            return Err(CampaignError::Journal(format!(
                "journal was written by a different campaign \
                 (journal fingerprint {fp}, manifest fingerprint {fingerprint}); \
                 delete it or run without --resume"
            )));
        }
    }

    // Open the journal — dropping any torn tail first — and stamp the
    // header on a fresh file.
    let journal = match &config.journal_path {
        Some(path) if config.resume => Some(Journal::append(path, replay.valid_len, config.fsync)?),
        Some(path) => Some(Journal::create(path, config.fsync)?),
        None => None,
    };
    if let Some(j) = &journal {
        if replay.fingerprint.is_none() {
            j.event(&journal::campaign_event(&fingerprint, jobs.len()));
        }
    }

    // Queue what the checkpoint does not already complete.
    let pending: Vec<&JobSpec> = jobs
        .iter()
        .filter(|job| !replay.completed.contains_key(&(job.spec.clone(), job.k)))
        .collect();
    if let Some(j) = &journal {
        for job in &pending {
            j.event(&journal::queued_event(&job.spec, job.k));
        }
    }

    // One shared preparation slot per spec: the first worker to need a
    // spec parses and locally analyzes it; every other K-job of that spec
    // reuses the Arc.
    let slots: Vec<OnceLock<SpecData>> =
        (0..manifest.specs.len()).map(|_| OnceLock::new()).collect();
    let engine = EngineConfig::with_threads(
        config
            .engine_threads
            .unwrap_or(manifest.engine_threads)
            .max(1),
    )
    .with_symmetry(config.symmetry.unwrap_or(manifest.symmetry));

    // Telemetry sinks. `None` when neither `--metrics` nor `--trace` was
    // asked for: the job path then allocates no counters and times no
    // spans, exactly as before this subsystem existed.
    let tele = (config.telemetry || config.trace).then(|| CampaignTelemetry::new(config.trace));
    let pool_stats = tele
        .as_ref()
        .map(|t| pool::PoolStats::from_registry(&t.registry));
    let progress = config.progress.clone();
    if let Some(p) = &progress {
        p.set_total(pending.len() as u64);
    }
    let replayed = replay.completed.len();

    let panics_caught = std::sync::atomic::AtomicU64::new(0);
    let fresh: Vec<Option<JobResult>> = pool::run_jobs_with_stats(
        config.workers,
        pending.len(),
        pool_stats.as_ref(),
        |worker, idx| {
            let job = pending[idx];
            if is_interrupted() {
                return None; // fast drain: skip everything still queued
            }
            if let Some(chaos) = &config.chaos {
                if chaos.should_cancel(&job.spec, job.k) {
                    if let Some(t) = &interrupt {
                        t.cancel();
                    }
                    return None;
                }
            }
            // Created OUTSIDE the panic net, so the phase time a panicking
            // attempt burned survives into the metrics document.
            let job_tele = tele.as_ref().map(|_| JobTelemetry::default());
            let scope = match (&tele, &job_tele) {
                (Some(t), Some(jt)) => Some(JobScope {
                    tele: t,
                    job: jt,
                    worker,
                    spec: &job.spec,
                    k: job.k,
                }),
                _ => None,
            };
            let scope = scope.as_ref();
            let record = |result: JobResult| {
                if let (Some(t), Some(jt)) = (&tele, &job_tele) {
                    t.finish_job(&result, jt);
                }
                if let Some(p) = &progress {
                    p.record(matches!(
                        result.outcome,
                        Outcome::Failed { .. } | Outcome::Panicked { .. } | Outcome::Error { .. }
                    ));
                }
                Some(result)
            };
            let mut attempt: u32 = 0;
            loop {
                if is_interrupted() {
                    return None;
                }
                if let Some(jt) = &job_tele {
                    jt.attempts
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                if let Some(j) = &journal {
                    timed(scope, Phase::JournalAppend, || {
                        j.event(&journal::started_event(&job.spec, job.k, worker, attempt));
                    });
                }
                let job_started = Instant::now();
                // The panic net: nothing a job does — chaos injection, an
                // engine bug, a poisoned OnceLock initializer — may unwind
                // into the pool.
                let ran = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(chaos) = &config.chaos {
                        if chaos.should_panic(&job.spec, job.k, attempt) {
                            panic!("chaos: injected worker panic (attempt {attempt})");
                        }
                    }
                    let data = slots[job.spec_index].get_or_init(|| {
                        let data = prepare_spec(manifest, job.spec_index, scope);
                        if let Some(j) = &journal {
                            let verdict = match &data {
                                Ok((_, verdict)) => verdict.clone(),
                                Err(_) => LocalVerdict::Error,
                            };
                            timed(scope, Phase::JournalAppend, || {
                                j.event(&journal::analyzed_event(&job.spec, &verdict));
                            });
                        }
                        data
                    });
                    execute_job(manifest, job, data, &engine, interrupt.as_ref(), scope)
                }));
                match ran {
                    Ok(Attempt::Done(result)) => {
                        if let Some(j) = &journal {
                            let phases = job_tele.as_ref().map(|jt| jt.phases.snapshot().to_json());
                            timed(scope, Phase::JournalAppend, || {
                                j.event(&journal::finished_event_with_phases(
                                    &result,
                                    worker,
                                    job_started.elapsed(),
                                    phases,
                                ));
                            });
                        }
                        return record(*result);
                    }
                    Ok(Attempt::Interrupted) => return None,
                    Err(payload) => {
                        panics_caught.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let message = panic_message(payload.as_ref());
                        if let Some(s) = scope {
                            s.tele.instant(s, "job_panicked");
                            s.tele
                                .registry
                                .counter("campaign/panics")
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        if let Some(j) = &journal {
                            timed(scope, Phase::JournalAppend, || {
                                j.event(&journal::panic_event(&job.spec, job.k, attempt, &message));
                            });
                        }
                        if attempt < config.retries {
                            if let Some(s) = scope {
                                s.tele
                                    .registry
                                    .counter("campaign/retries")
                                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            // Deterministic exponential backoff: a pure
                            // function of the attempt index, no jitter, no
                            // clock in any recorded artifact.
                            let delay =
                                config.backoff * (1u32 << attempt.min(BACKOFF_EXPONENT_CAP));
                            if !delay.is_zero() {
                                timed(scope, Phase::RetryBackoff, || std::thread::sleep(delay));
                            }
                            attempt += 1;
                            continue;
                        }
                        // Retries exhausted: degrade to a failed outcome.
                        // Deliberately NOT journaled as `finished` — a
                        // panic is a toolchain fault, so a resumed
                        // campaign gets to retry the job from scratch.
                        return record(JobResult {
                            spec: job.spec.clone(),
                            k: job.k,
                            outcome: Outcome::Panicked {
                                attempts: attempt as u64 + 1,
                                message,
                            },
                            states: 0,
                            legit: 0,
                        });
                    }
                }
            }
        },
    );

    let interrupted = is_interrupted();

    // Merge in manifest order: replayed results win their cell, fresh
    // results fill the rest. On an interrupted run, cells that never
    // completed are simply absent.
    let mut fresh_by_cell: BTreeMap<(String, usize), JobResult> = fresh
        .into_iter()
        .flatten()
        .map(|r| ((r.spec.clone(), r.k), r))
        .collect();
    let executed = fresh_by_cell.len();
    let mut results = Vec::with_capacity(jobs.len());
    for job in &jobs {
        let cell = (job.spec.clone(), job.k);
        match replay
            .completed
            .get(&cell)
            .cloned()
            .or_else(|| fresh_by_cell.remove(&cell))
        {
            Some(result) => results.push(result),
            None if interrupted => {}
            None => unreachable!("every job is replayed or freshly executed"),
        }
    }

    // Local verdicts: replayed first, then whatever this invocation
    // computed, then a lazy fill for specs whose jobs were all replayed
    // from a journal predating the `analyzed` events. An interrupted run
    // skips the lazy fill — winding down fast matters more than report
    // completeness, and the partial report is not published anyway.
    let mut locals = replay.locals;
    for (spec_index, slot) in slots.iter().enumerate() {
        if let Some(data) = slot.get() {
            let verdict = match data {
                Ok((_, verdict)) => verdict.clone(),
                Err(_) => LocalVerdict::Error,
            };
            locals.insert(manifest.specs[spec_index].clone(), verdict);
        }
    }
    if !interrupted {
        for (spec_index, spec) in manifest.specs.iter().enumerate() {
            if !locals.contains_key(spec) {
                let verdict = match prepare_spec(manifest, spec_index, None) {
                    Ok((_, verdict)) => verdict,
                    Err(_) => LocalVerdict::Error,
                };
                locals.insert(spec.clone(), verdict);
            }
        }
    }

    // Durability point: everything journaled so far survives a kill, so a
    // `--resume` after SIGINT/SIGKILL loses no completed job.
    if let Some(j) = &journal {
        j.sync();
    }

    let report = report::build(manifest, &fingerprint, &results, &locals);
    let rendered_report = report::render(&report);
    let (metrics, trace) = match &tele {
        Some(t) => (
            Some(t.metrics_json(
                manifest,
                &fingerprint,
                config.workers.max(1),
                engine.threads.max(1),
                replayed,
            )),
            t.trace.as_ref().map(TraceCollector::to_json),
        ),
        None => (None, None),
    };
    Ok(CampaignOutcome {
        results,
        locals,
        report,
        rendered_report,
        executed,
        interrupted,
        panics_caught: panics_caught.into_inner(),
        elapsed: started.elapsed(),
        metrics,
        trace,
    })
}

/// Renders a caught panic payload (the `&str`/`String` payloads `panic!`
/// produces, or a placeholder for exotic types).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Parses and locally analyzes one spec (the once-per-spec shared work).
/// The `parse` and `local_analysis` phases are attributed to the job whose
/// worker happened to trigger the shared preparation.
fn prepare_spec(manifest: &Manifest, spec_index: usize, scope: Option<&JobScope<'_>>) -> SpecData {
    let path = manifest.spec_path(spec_index);
    let protocol = timed(scope, Phase::Parse, || -> Result<Protocol, String> {
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        selfstab_protocol::file::parse_protocol_file(&source)
            .map_err(|e| format!("{}: {e}", manifest.specs[spec_index]))
    })?;
    let local = timed(scope, Phase::LocalAnalysis, || {
        StabilizationReport::analyze(&protocol)
    });
    let verdict = if local.is_self_stabilizing_for_all_k() {
        LocalVerdict::Proven
    } else {
        LocalVerdict::Unproven
    };
    Ok((Arc::new(protocol), verdict))
}

/// Runs one job within its budgets, degrading gracefully on every failure
/// mode: parse errors, `d^K` over the state budget, and blown deadlines
/// all become outcomes, never campaign aborts. A fired interrupt token is
/// the one non-outcome: the attempt reports [`Attempt::Interrupted`] and
/// the job is left for the resumed campaign.
fn execute_job(
    manifest: &Manifest,
    job: &JobSpec,
    data: &SpecData,
    engine: &EngineConfig,
    interrupt: Option<&Arc<CancelToken>>,
    scope: Option<&JobScope<'_>>,
) -> Attempt {
    let mut result = JobResult {
        spec: job.spec.clone(),
        k: job.k,
        outcome: Outcome::Verified,
        states: 0,
        legit: 0,
    };
    let protocol = match data {
        Ok((protocol, _)) => protocol,
        Err(message) => {
            result.outcome = Outcome::Error {
                message: message.clone(),
            };
            return Attempt::Done(Box::new(result));
        }
    };

    // State budget: reject d^K > max_states before allocating anything.
    let d = protocol.domain().size() as u64;
    let within_budget = (d.checked_pow(job.k as u32))
        .map(|states| states <= manifest.max_states)
        .unwrap_or(false);
    if !within_budget {
        result.outcome = Outcome::OverBudget {
            reason: "states".into(),
        };
        return Attempt::Done(Box::new(result));
    }
    let ring = match RingInstance::symmetric_with_limit(protocol, job.k, manifest.max_states) {
        Ok(ring) => ring,
        Err(GlobalError::StateSpaceTooLarge { .. }) => {
            result.outcome = Outcome::OverBudget {
                reason: "states".into(),
            };
            return Attempt::Done(Box::new(result));
        }
        Err(e) => {
            result.outcome = Outcome::Error {
                message: e.to_string(),
            };
            return Attempt::Done(Box::new(result));
        }
    };

    // The per-job token: the manifest's wall-clock deadline, linked to the
    // campaign-wide interrupt so one SIGINT (or chaos cancel) aborts every
    // in-flight scan within a poll stride.
    let deadline = manifest
        .timeout_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let token = match (interrupt, deadline) {
        (Some(parent), Some(d)) => CancelToken::linked_with_deadline(Arc::clone(parent), d),
        (Some(parent), None) => CancelToken::linked(Arc::clone(parent)),
        (None, Some(d)) => CancelToken::with_deadline(d),
        (None, None) => CancelToken::new(),
    };
    // The check, decomposed so the two engine passes get their own phase
    // spans. Counters exist only when telemetry is on; `None` keeps the
    // metered engine on its zero-overhead path. The composition is exactly
    // `ConvergenceReport::check_metered` — verdict semantics unchanged.
    let counters = scope.map(|_| EngineCounters::new());
    let counters = counters.as_ref();
    let cancelled = |result: JobResult| {
        if interrupt.is_some_and(|t| t.is_cancelled()) {
            return Attempt::Interrupted;
        }
        let mut result = result;
        result.outcome = Outcome::OverBudget {
            reason: "deadline".into(),
        };
        Attempt::Done(Box::new(result))
    };
    let scan = match timed(scope, Phase::FusedScan, || {
        fused_scan_metered(&ring, engine, &token, counters)
    }) {
        Ok(scan) => scan,
        Err(_) => return cancelled(result),
    };
    let livelock = match timed(scope, Phase::LivelockDfs, || {
        find_livelock_metered(&ring, &scan, &token, counters)
    }) {
        Ok(livelock) => livelock,
        Err(_) => return cancelled(result),
    };
    result.states = ring.space().len();
    result.legit = scan.legit_count;
    let closure_ok = scan.first_closure_violation.is_none();
    result.outcome = if closure_ok && scan.illegitimate_deadlocks.is_empty() && livelock.is_none() {
        Outcome::Verified
    } else {
        Outcome::Failed {
            closure_ok,
            deadlocks: scan.illegitimate_deadlocks.len() as u64,
            livelock_len: livelock.as_ref().map(|c| c.len() as u64),
        }
    };
    // Counters land on the job only once the check completed — a cancelled
    // scan flushed nothing and must not masquerade as a measurement.
    if let (Some(s), Some(c)) = (scope, counters) {
        s.job.set_counters(c.snapshot());
    }
    Attempt::Done(Box::new(result))
}

//! The append-only, torn-write-safe event journal — the campaign's log
//! *and* its checkpoint.
//!
//! Every record is one line with a self-describing frame around a compact
//! JSON payload (the vendored renderer escapes control characters, so a
//! payload never contains a raw newline):
//!
//! ```text
//! <len:08x> <crc32:08x> <payload-json>\n
//! ```
//!
//! * `len` — byte length of the payload;
//! * `crc32` — CRC-32 (IEEE) of the payload bytes;
//! * the trailing newline is part of the frame: a record without it is a
//!   torn tail, not a record.
//!
//! The payload is one self-contained JSON object with an `ev` tag:
//!
//! ```text
//! {"ev":"campaign","fingerprint":"9a6b…","jobs":70}
//! {"ev":"analyzed","local":"proven","spec":"specs/agreement.stab"}
//! {"ev":"queued","k":2,"spec":"specs/agreement.stab"}
//! {"ev":"started","attempt":0,"k":2,"spec":"specs/agreement.stab","worker":1}
//! {"ev":"job_panicked","attempt":0,"error":"…","k":2,"spec":"specs/agreement.stab"}
//! {"ev":"finished","duration_us":184,"k":2,"legit":2,"outcome":"verified",
//!  "spec":"specs/agreement.stab","states":4,"worker":1}
//! ```
//!
//! Records are appended under a mutex and flushed one at a time; fsync is
//! governed by [`FsyncPolicy`]. A crash — even one that tears a record in
//! half, or a stray bit flip — can therefore only damage a *suffix* of the
//! file: [`replay`] validates each frame in order and **truncates at the
//! first corrupt or partial record**, never erroring on a torn tail, and
//! [`Journal::append`] physically truncates the file to that valid prefix
//! so resumed appends cannot merge into torn garbage.
//!
//! [`replay`] folds the valid prefix back into the set of completed jobs
//! and per-spec local verdicts; everything else (`queued`, `started`,
//! `job_panicked`, timing fields) is telemetry and is deliberately ignored
//! on resume, which is what makes the final report independent of
//! scheduling, retries, and fault injection.

use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use serde_json::{json, Value};

use crate::job::{JobResult, LocalVerdict};
use crate::runner::CampaignError;

/// How often [`FsyncPolicy::Batch`] forces records to stable storage.
const BATCH_SYNC_EVERY: usize = 64;

/// When the journal calls `fsync`.
///
/// Every policy still *flushes* each record to the OS as it is written (so
/// a process crash loses nothing); fsync only matters for power loss and
/// kernel crashes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: maximum durability, one syscall per job
    /// event.
    Always,
    /// `fsync` every [`BATCH_SYNC_EVERY`] records and on [`Journal::sync`]
    /// (the campaign syncs at the end of every run and on interrupt).
    #[default]
    Batch,
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time — no external hash dependencies.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE) checksum of `bytes`, as used by the record framing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frames one event as a full journal line (including the trailing
/// newline): `len crc payload\n`.
pub fn frame(v: &Value) -> String {
    let payload = v.to_string();
    format!(
        "{:08x} {:08x} {payload}\n",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

/// Parses one journal line (without its newline). Returns the payload on a
/// valid frame, `None` on anything torn or corrupt.
fn unframe(line: &str) -> Option<Value> {
    // "llllllll cccccccc " is 18 bytes of frame header.
    if line.len() < 18 || line.as_bytes()[8] != b' ' || line.as_bytes()[17] != b' ' {
        return None;
    }
    let len = usize::from_str_radix(&line[..8], 16).ok()?;
    let crc = u32::from_str_radix(&line[9..17], 16).ok()?;
    let payload = &line[18..];
    if payload.len() != len || crc32(payload.as_bytes()) != crc {
        return None;
    }
    serde_json::from_str(payload).ok()
}

/// State behind the journal's mutex: the buffered writer plus the count of
/// records flushed but not yet fsynced (for [`FsyncPolicy::Batch`]).
#[derive(Debug)]
struct Inner {
    writer: BufWriter<std::fs::File>,
    unsynced: usize,
}

/// A live, append-only framed journal.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<Inner>,
    path: PathBuf,
    fsync: FsyncPolicy,
}

impl Journal {
    /// Creates (truncating) a fresh journal.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] if the file cannot be created.
    pub fn create(path: &Path, fsync: FsyncPolicy) -> Result<Self, CampaignError> {
        let file = std::fs::File::create(path)
            .map_err(|e| CampaignError::Io(format!("cannot create `{}`: {e}", path.display())))?;
        Ok(Journal {
            inner: Mutex::new(Inner {
                writer: BufWriter::new(file),
                unsynced: 0,
            }),
            path: path.to_path_buf(),
            fsync,
        })
    }

    /// Opens an existing journal for appending (creating it if absent),
    /// first truncating it to `valid_len` — the byte length of the valid
    /// record prefix reported by [`replay`] — so a torn tail left by a
    /// crash can never merge with freshly appended records.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] if the file cannot be opened or
    /// truncated.
    pub fn append(path: &Path, valid_len: u64, fsync: FsyncPolicy) -> Result<Self, CampaignError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| CampaignError::Io(format!("cannot open `{}`: {e}", path.display())))?;
        file.set_len(valid_len).map_err(|e| {
            CampaignError::Io(format!(
                "cannot drop torn tail of `{}`: {e}",
                path.display()
            ))
        })?;
        Ok(Journal {
            inner: Mutex::new(Inner {
                writer: BufWriter::new(file),
                unsynced: 0,
            }),
            path: path.to_path_buf(),
            fsync,
        })
    }

    /// The journal's location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one framed event line and flushes it, so a crash after
    /// `event` returns can lose at most events that were never reported
    /// written; fsyncs per the journal's [`FsyncPolicy`].
    pub fn event(&self, v: &Value) {
        let line = frame(v);
        let mut inner = self.inner.lock().expect("journal writer poisoned");
        // A write failure must not take the whole campaign down mid-job;
        // the journal degrades to telemetry and the report is still built
        // from in-memory results.
        let _ = inner.writer.write_all(line.as_bytes());
        let _ = inner.writer.flush();
        inner.unsynced += 1;
        let due = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch => inner.unsynced >= BATCH_SYNC_EVERY,
        };
        if due {
            let _ = inner.writer.get_ref().sync_data();
            inner.unsynced = 0;
        }
    }

    /// Flushes and fsyncs everything written so far. Called by the runner
    /// at the end of every campaign and when a sweep is interrupted, so a
    /// subsequent `--resume` loses no completed job.
    pub fn sync(&self) {
        let mut inner = self.inner.lock().expect("journal writer poisoned");
        let _ = inner.writer.flush();
        let _ = inner.writer.get_ref().sync_data();
        inner.unsynced = 0;
    }
}

/// Builds the `campaign` header event.
pub fn campaign_event(fingerprint: &str, jobs: usize) -> Value {
    json!({"ev": "campaign", "fingerprint": fingerprint, "jobs": jobs})
}

/// Builds an `analyzed` event carrying a spec's shared local verdict.
pub fn analyzed_event(spec: &str, verdict: &LocalVerdict) -> Value {
    json!({"ev": "analyzed", "spec": spec, "local": verdict.tag()})
}

/// Builds a `queued` event.
pub fn queued_event(spec: &str, k: usize) -> Value {
    json!({"ev": "queued", "spec": spec, "k": k})
}

/// Builds a `started` event (re-emitted per retry attempt).
pub fn started_event(spec: &str, k: usize, worker: usize, attempt: u32) -> Value {
    json!({"ev": "started", "spec": spec, "k": k, "worker": worker, "attempt": attempt})
}

/// Builds a `job_panicked` event: a worker panic was caught and isolated
/// instead of unwinding the pool. Telemetry only — replay never treats a
/// panicked attempt as completing its job, so a resumed campaign retries
/// it from scratch.
pub fn panic_event(spec: &str, k: usize, attempt: u32, error: &str) -> Value {
    json!({"ev": "job_panicked", "spec": spec, "k": k, "attempt": attempt, "error": error})
}

/// Builds a `finished` event: the job's full result (so replay can rebuild
/// the report without re-running anything) plus telemetry that the report
/// never copies (worker id, duration).
pub fn finished_event(result: &JobResult, worker: usize, duration: Duration) -> Value {
    finished_event_with_phases(result, worker, duration, None)
}

/// [`finished_event`] plus an optional `phases_us` telemetry object (the
/// job's per-phase microseconds, as rendered by the telemetry crate's
/// `PhaseSnapshot::to_json`). Replay ignores it like every other
/// telemetry field, so journals with and without phase breakdowns resume
/// identically.
pub fn finished_event_with_phases(
    result: &JobResult,
    worker: usize,
    duration: Duration,
    phases_us: Option<Value>,
) -> Value {
    let mut row = result.report_row();
    let Value::Object(map) = &mut row else {
        unreachable!("report_row returns an object");
    };
    map.insert("ev".into(), json!("finished"));
    map.insert("worker".into(), json!(worker));
    map.insert("duration_us".into(), json!(duration.as_micros() as u64));
    if let Some(phases) = phases_us {
        map.insert("phases_us".into(), phases);
    }
    row
}

/// The raw frame-level view of a journal: every event payload in the
/// longest valid prefix, plus that prefix's byte length. This is the
/// format-agnostic layer under [`replay`] — other subsystems (the serve
/// daemon's job journal, the cache snapshot) share the framing and fold
/// the events with their own semantics.
#[derive(Debug, Default)]
pub struct FrameReplay {
    /// Every valid event payload, in append order.
    pub events: Vec<Value>,
    /// Byte length of the valid framed prefix; everything beyond it is a
    /// torn or corrupt tail.
    pub valid_len: u64,
}

/// Replays a framed file at the record level: validates each frame
/// (length + CRC-32) in order and stops at the first torn or corrupt
/// record, returning the surviving payloads and the valid prefix length.
/// A missing file replays as empty.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] only if the file exists but cannot be
/// read.
pub fn replay_frames(path: &Path) -> Result<FrameReplay, CampaignError> {
    let mut out = FrameReplay::default();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => {
            return Err(CampaignError::Io(format!(
                "cannot read journal `{}`: {e}",
                path.display()
            )))
        }
    };
    for chunk in text.split_inclusive('\n') {
        let Some(line) = chunk.strip_suffix('\n') else {
            break; // torn tail: the final record never got its newline
        };
        let Some(ev) = unframe(line) else {
            break; // corrupt record: everything at and past it is dropped
        };
        out.events.push(ev);
        out.valid_len += chunk.len() as u64;
    }
    Ok(out)
}

/// A journal folded back into campaign state.
#[derive(Debug, Default)]
pub struct Replay {
    /// The fingerprint from the `campaign` header, if one was recorded.
    pub fingerprint: Option<String>,
    /// Completed jobs keyed by `(spec, k)`.
    pub completed: BTreeMap<(String, usize), JobResult>,
    /// Replayed per-spec local verdicts.
    pub locals: BTreeMap<String, LocalVerdict>,
    /// Caught worker panics per `(spec, k)` — telemetry; panicked attempts
    /// never complete a job, so these cells re-execute on resume.
    pub panics: BTreeMap<(String, usize), u64>,
    /// Byte length of the valid framed prefix. Everything beyond it is a
    /// torn or corrupt tail that [`Journal::append`] drops before
    /// appending.
    pub valid_len: u64,
}

/// Replays a journal file, validating each record's frame (length +
/// CRC-32) in order and stopping at the first torn or corrupt record — a
/// crash mid-write, a `SIGKILL`, or a chaos-injected truncation leaves a
/// valid prefix that replays cleanly, never an error. A later `finished`
/// for the same `(spec, k)` wins, making replay idempotent.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] only if the journal cannot be read at all;
/// a missing file replays as empty.
pub fn replay(path: &Path) -> Result<Replay, CampaignError> {
    let frames = replay_frames(path)?;
    let mut out = Replay {
        valid_len: frames.valid_len,
        ..Replay::default()
    };
    for ev in frames.events {
        match ev["ev"].as_str() {
            Some("campaign") => {
                if let Some(fp) = ev["fingerprint"].as_str() {
                    out.fingerprint = Some(fp.to_owned());
                }
            }
            Some("analyzed") => {
                if let Some(spec) = ev["spec"].as_str() {
                    let verdict = match ev["local"].as_str() {
                        Some("proven") => LocalVerdict::Proven,
                        Some("unproven") => LocalVerdict::Unproven,
                        _ => LocalVerdict::Error,
                    };
                    out.locals.insert(spec.to_owned(), verdict);
                }
            }
            Some("job_panicked") => {
                if let (Some(spec), Some(k)) = (ev["spec"].as_str(), ev["k"].as_u64()) {
                    *out.panics.entry((spec.to_owned(), k as usize)).or_default() += 1;
                }
            }
            Some("finished") => {
                if let Some(result) = JobResult::from_event(&ev) {
                    out.completed
                        .insert((result.spec.clone(), result.k), result);
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Outcome;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("selfstab-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn result(spec: &str, k: usize) -> JobResult {
        JobResult {
            spec: spec.into(),
            k,
            outcome: Outcome::Verified,
            states: 4,
            legit: 2,
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_and_reject_corruption() {
        let ev = queued_event("a.stab", 2);
        let line = frame(&ev);
        assert!(line.ends_with('\n'));
        let back = unframe(line.strip_suffix('\n').unwrap()).expect("valid frame");
        assert_eq!(back, ev);

        // Flip one payload byte: the CRC catches it.
        let mut bad = line.strip_suffix('\n').unwrap().to_owned();
        let last = bad.pop().unwrap();
        bad.push(if last == '}' { ')' } else { '}' });
        assert!(unframe(&bad).is_none());
        // Truncate mid-payload: the length catches it.
        assert!(unframe(&line[..line.len() - 4]).is_none());
        // A legacy unframed JSON line is not a record.
        assert!(unframe(&ev.to_string()).is_none());
    }

    #[test]
    fn journal_roundtrips_through_replay() {
        let path = tmp("roundtrip.jsonl");
        let j = Journal::create(&path, FsyncPolicy::Always).unwrap();
        j.event(&campaign_event("deadbeef", 2));
        j.event(&analyzed_event("a.stab", &LocalVerdict::Proven));
        j.event(&queued_event("a.stab", 2));
        j.event(&started_event("a.stab", 2, 0, 0));
        j.event(&panic_event("a.stab", 2, 0, "chaos"));
        let result = result("a.stab", 2);
        j.event(&finished_event(&result, 0, Duration::from_micros(55)));
        j.sync();
        drop(j);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.fingerprint.as_deref(), Some("deadbeef"));
        assert_eq!(replayed.completed.len(), 1);
        assert_eq!(replayed.completed[&("a.stab".into(), 2)], result);
        assert_eq!(replayed.locals["a.stab"], LocalVerdict::Proven);
        assert_eq!(replayed.panics[&("a.stab".into(), 2)], 1);
        assert_eq!(
            replayed.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "a clean journal is valid to its last byte"
        );
    }

    #[test]
    fn replay_truncates_at_torn_tail_and_handles_missing_files() {
        let path = tmp("truncated.jsonl");
        let good = format!(
            "{}{}",
            frame(&campaign_event("fp", 2)),
            frame(&finished_event(&result("a.stab", 3), 1, Duration::ZERO))
        );
        let torn = frame(&finished_event(&result("a.stab", 4), 1, Duration::ZERO));
        std::fs::write(&path, format!("{good}{}", &torn[..torn.len() / 2])).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.completed.len(), 1);
        assert!(replayed.completed.contains_key(&("a.stab".into(), 3)));
        assert_eq!(replayed.valid_len as usize, good.len());

        let missing = replay(&tmp("never-written.jsonl")).unwrap();
        assert!(missing.completed.is_empty());
        assert!(missing.fingerprint.is_none());
        assert_eq!(missing.valid_len, 0);
    }

    #[test]
    fn replay_stops_at_a_corrupt_middle_record() {
        // A bit flip in the middle invalidates that record AND the valid
        // records after it: resume-safety demands a contiguous prefix, so
        // later records are deliberately dropped and re-executed.
        let path = tmp("bitflip.jsonl");
        let first = frame(&finished_event(&result("a.stab", 2), 0, Duration::ZERO));
        let second = frame(&finished_event(&result("a.stab", 3), 0, Duration::ZERO));
        let third = frame(&finished_event(&result("a.stab", 4), 0, Duration::ZERO));
        let mut bytes = format!("{first}{second}{third}").into_bytes();
        bytes[first.len() + 30] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.completed.len(), 1);
        assert!(replayed.completed.contains_key(&("a.stab".into(), 2)));
        assert_eq!(replayed.valid_len as usize, first.len());
    }

    #[test]
    fn append_drops_the_torn_tail_before_writing() {
        let path = tmp("append-truncates.jsonl");
        let good = frame(&finished_event(&result("a.stab", 2), 0, Duration::ZERO));
        std::fs::write(&path, format!("{good}01234567 89abcdef torn")).unwrap();

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.valid_len as usize, good.len());
        let j = Journal::append(&path, replayed.valid_len, FsyncPolicy::Batch).unwrap();
        j.event(&finished_event(&result("a.stab", 3), 0, Duration::ZERO));
        j.sync();
        drop(j);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.completed.len(), 2, "torn tail gone, both jobs in");
        assert_eq!(
            replayed.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "no garbage left behind the appended record"
        );
    }
}

//! The append-only JSONL event journal — the campaign's log *and* its
//! checkpoint.
//!
//! Every line is one self-contained JSON object with an `ev` tag:
//!
//! ```text
//! {"ev":"campaign","fingerprint":"9a6b…","jobs":70}
//! {"ev":"analyzed","local":"proven","spec":"specs/agreement.stab"}
//! {"ev":"queued","k":2,"spec":"specs/agreement.stab"}
//! {"ev":"started","k":2,"spec":"specs/agreement.stab","worker":1}
//! {"ev":"finished","duration_us":184,"k":2,"legit":2,"outcome":"verified",
//!  "spec":"specs/agreement.stab","states":4,"worker":1}
//! ```
//!
//! Lines are appended under a mutex and flushed one at a time, so an
//! interrupted campaign always leaves a valid prefix. [`replay`] folds a
//! journal back into the set of completed jobs and per-spec local verdicts;
//! everything else (`queued`, `started`, timing fields) is telemetry and is
//! deliberately ignored on resume, which is what makes the final report
//! independent of scheduling.

use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use serde_json::{json, Value};

use crate::job::{JobResult, LocalVerdict};
use crate::runner::CampaignError;

/// A live, append-only JSONL journal.
#[derive(Debug)]
pub struct Journal {
    writer: Mutex<BufWriter<std::fs::File>>,
    path: PathBuf,
}

impl Journal {
    /// Creates (truncating) a fresh journal.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] if the file cannot be created.
    pub fn create(path: &Path) -> Result<Self, CampaignError> {
        let file = std::fs::File::create(path)
            .map_err(|e| CampaignError::Io(format!("cannot create `{}`: {e}", path.display())))?;
        Ok(Journal {
            writer: Mutex::new(BufWriter::new(file)),
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing journal for appending (creating it if absent).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] if the file cannot be opened.
    pub fn append(path: &Path) -> Result<Self, CampaignError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| CampaignError::Io(format!("cannot open `{}`: {e}", path.display())))?;
        Ok(Journal {
            writer: Mutex::new(BufWriter::new(file)),
            path: path.to_path_buf(),
        })
    }

    /// The journal's location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event line and flushes it, so a crash after `event`
    /// returns can lose at most events that were never reported written.
    pub fn event(&self, v: &Value) {
        let mut w = self.writer.lock().expect("journal writer poisoned");
        // A write failure must not take the whole campaign down mid-job;
        // the journal degrades to telemetry and the report is still built
        // from in-memory results.
        let _ = writeln!(w, "{v}");
        let _ = w.flush();
    }
}

/// Builds the `campaign` header event.
pub fn campaign_event(fingerprint: &str, jobs: usize) -> Value {
    json!({"ev": "campaign", "fingerprint": fingerprint, "jobs": jobs})
}

/// Builds an `analyzed` event carrying a spec's shared local verdict.
pub fn analyzed_event(spec: &str, verdict: &LocalVerdict) -> Value {
    json!({"ev": "analyzed", "spec": spec, "local": verdict.tag()})
}

/// Builds a `queued` event.
pub fn queued_event(spec: &str, k: usize) -> Value {
    json!({"ev": "queued", "spec": spec, "k": k})
}

/// Builds a `started` event.
pub fn started_event(spec: &str, k: usize, worker: usize) -> Value {
    json!({"ev": "started", "spec": spec, "k": k, "worker": worker})
}

/// Builds a `finished` event: the job's full result (so replay can rebuild
/// the report without re-running anything) plus telemetry that the report
/// never copies (worker id, duration).
pub fn finished_event(result: &JobResult, worker: usize, duration: Duration) -> Value {
    let mut row = result.report_row();
    let Value::Object(map) = &mut row else {
        unreachable!("report_row returns an object");
    };
    map.insert("ev".into(), json!("finished"));
    map.insert("worker".into(), json!(worker));
    map.insert("duration_us".into(), json!(duration.as_micros() as u64));
    row
}

/// A journal folded back into campaign state.
#[derive(Debug, Default)]
pub struct Replay {
    /// The fingerprint from the `campaign` header, if one was recorded.
    pub fingerprint: Option<String>,
    /// Completed jobs keyed by `(spec, k)`.
    pub completed: BTreeMap<(String, usize), JobResult>,
    /// Replayed per-spec local verdicts.
    pub locals: BTreeMap<String, LocalVerdict>,
}

/// Replays a journal file. Unparseable or truncated trailing lines are
/// skipped (an interrupt can land mid-line); a later `finished` for the
/// same `(spec, k)` wins, making replay idempotent.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] only if the journal cannot be read at all;
/// a missing file replays as empty.
pub fn replay(path: &Path) -> Result<Replay, CampaignError> {
    let mut out = Replay::default();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => {
            return Err(CampaignError::Io(format!(
                "cannot read journal `{}`: {e}",
                path.display()
            )))
        }
    };
    for line in text.lines() {
        let Ok(ev) = serde_json::from_str(line) else {
            continue;
        };
        match ev["ev"].as_str() {
            Some("campaign") => {
                if let Some(fp) = ev["fingerprint"].as_str() {
                    out.fingerprint = Some(fp.to_owned());
                }
            }
            Some("analyzed") => {
                if let Some(spec) = ev["spec"].as_str() {
                    let verdict = match ev["local"].as_str() {
                        Some("proven") => LocalVerdict::Proven,
                        Some("unproven") => LocalVerdict::Unproven,
                        _ => LocalVerdict::Error,
                    };
                    out.locals.insert(spec.to_owned(), verdict);
                }
            }
            Some("finished") => {
                if let Some(result) = JobResult::from_event(&ev) {
                    out.completed
                        .insert((result.spec.clone(), result.k), result);
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Outcome;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("selfstab-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn journal_roundtrips_through_replay() {
        let path = tmp("roundtrip.jsonl");
        let j = Journal::create(&path).unwrap();
        j.event(&campaign_event("deadbeef", 2));
        j.event(&analyzed_event("a.stab", &LocalVerdict::Proven));
        j.event(&queued_event("a.stab", 2));
        j.event(&started_event("a.stab", 2, 0));
        let result = JobResult {
            spec: "a.stab".into(),
            k: 2,
            outcome: Outcome::Verified,
            states: 4,
            legit: 2,
        };
        j.event(&finished_event(&result, 0, Duration::from_micros(55)));
        drop(j);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.fingerprint.as_deref(), Some("deadbeef"));
        assert_eq!(replayed.completed.len(), 1);
        assert_eq!(replayed.completed[&("a.stab".into(), 2)], result);
        assert_eq!(replayed.locals["a.stab"], LocalVerdict::Proven);
    }

    #[test]
    fn replay_skips_truncated_tail_and_missing_files() {
        let path = tmp("truncated.jsonl");
        let full = format!(
            "{}\n{}\n{{\"ev\":\"finis",
            campaign_event("fp", 1),
            finished_event(
                &JobResult {
                    spec: "a.stab".into(),
                    k: 3,
                    outcome: Outcome::OverBudget {
                        reason: "states".into()
                    },
                    states: 0,
                    legit: 0,
                },
                1,
                Duration::ZERO,
            )
        );
        std::fs::write(&path, full).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.completed.len(), 1);
        assert_eq!(
            replayed.completed[&("a.stab".into(), 3)].outcome.tag(),
            "over_budget"
        );

        let missing = replay(&tmp("never-written.jsonl")).unwrap();
        assert!(missing.completed.is_empty());
        assert!(missing.fingerprint.is_none());
    }
}

//! Jobs — the (spec, ring size) cells of a campaign's matrix — and their
//! outcomes.

use serde_json::{json, Value};

/// One cell of the campaign matrix: check `spec` at ring size `k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Index of the spec in the manifest's expanded spec list.
    pub spec_index: usize,
    /// The spec's path as recorded in journal and report (relative to the
    /// manifest, forward slashes).
    pub spec: String,
    /// The ring size to check.
    pub k: usize,
}

/// The outcome lattice of a job, ordered from best to worst:
///
/// ```text
///   Verified  <  Failed ≈ Panicked  <  OverBudget  <  Error
/// ```
///
/// `Verified`/`Failed` are definite verdicts from a completed global check;
/// `Panicked` means every attempt of the job crashed (a toolchain fault,
/// reported under the `failed` tag so the sweep exits non-zero, but never
/// counted as a *verification* refutation); `OverBudget` means the job was
/// skipped or aborted by its budget (the verdict at that size is unknown
/// but the campaign is unharmed); `Error` means the spec could not even be
/// parsed or instantiated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The global check completed: strongly self-stabilizing at this size.
    Verified,
    /// The global check completed and found a counterexample.
    Failed {
        /// `true` iff `I(K)` is closed at this size.
        closure_ok: bool,
        /// Number of global deadlocks outside `I(K)`.
        deadlocks: u64,
        /// Length of the livelock cycle witness, if one was found.
        livelock_len: Option<u64>,
    },
    /// Every attempt of the job panicked; the panic was caught and the
    /// failure recorded instead of unwinding the worker pool. Degrades to
    /// the `failed` report tag (with `panic`/`attempts` detail fields), so
    /// an exhausted retry budget fails the sweep rather than aborting it.
    /// The journal records only `job_panicked` telemetry — never a
    /// `finished` event — so a resumed campaign retries the job afresh.
    Panicked {
        /// Attempts made (1 + the configured retries).
        attempts: u64,
        /// The rendered panic payload of the last attempt.
        message: String,
    },
    /// The job exceeded its state budget or wall-clock deadline.
    OverBudget {
        /// What tripped: `"states"` or `"deadline"`.
        reason: String,
    },
    /// The spec could not be parsed/instantiated.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Outcome {
    /// The canonical snake_case tag used in journal events and reports.
    /// `Panicked` deliberately shares the `failed` tag: a job that crashed
    /// on every attempt is a failure of the sweep (exit code 2), told apart
    /// in the report row by its `panic` field.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Verified => "verified",
            Outcome::Failed { .. } | Outcome::Panicked { .. } => "failed",
            Outcome::OverBudget { .. } => "over_budget",
            Outcome::Error { .. } => "error",
        }
    }
}

/// The completed result of one job, as recorded in the journal's
/// `finished` event and the report's `jobs` array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobResult {
    /// The spec path (see [`JobSpec::spec`]).
    pub spec: String,
    /// The ring size checked.
    pub k: usize,
    /// The verdict.
    pub outcome: Outcome,
    /// Global states swept (0 when the check never ran).
    pub states: u64,
    /// States in `I(K)` (0 when the check never ran).
    pub legit: u64,
}

impl JobResult {
    /// The report row for this job: canonical, no wall-clock fields.
    pub fn report_row(&self) -> Value {
        let mut row = json!({
            "spec": self.spec.as_str(),
            "k": self.k,
            "outcome": self.outcome.tag(),
            "states": self.states,
            "legit": self.legit,
        });
        let Value::Object(map) = &mut row else {
            unreachable!("json! object literal");
        };
        match &self.outcome {
            Outcome::Verified => {}
            Outcome::Failed {
                closure_ok,
                deadlocks,
                livelock_len,
            } => {
                map.insert("closure_ok".into(), json!(*closure_ok));
                map.insert("deadlocks".into(), json!(*deadlocks));
                map.insert("livelock_len".into(), json!(*livelock_len));
            }
            Outcome::Panicked { attempts, message } => {
                map.insert("attempts".into(), json!(*attempts));
                map.insert("panic".into(), json!(message.as_str()));
            }
            Outcome::OverBudget { reason } => {
                map.insert("reason".into(), json!(reason.as_str()));
            }
            Outcome::Error { message } => {
                map.insert("message".into(), json!(message.as_str()));
            }
        }
        row
    }

    /// Reconstructs a result from a journal `finished` event (the inverse
    /// of [`journal::finished_event`](crate::journal::finished_event)).
    pub fn from_event(ev: &Value) -> Option<Self> {
        let spec = ev["spec"].as_str()?.to_owned();
        let k = ev["k"].as_u64()? as usize;
        let states = ev["states"].as_u64().unwrap_or(0);
        let legit = ev["legit"].as_u64().unwrap_or(0);
        let outcome = match ev["outcome"].as_str()? {
            "verified" => Outcome::Verified,
            // `failed` covers both genuine refutations and panicked-out
            // jobs; the `panic` detail field tells them apart.
            "failed" if ev["panic"].as_str().is_some() => Outcome::Panicked {
                attempts: ev["attempts"].as_u64().unwrap_or(1),
                message: ev["panic"].as_str().unwrap_or("unknown").to_owned(),
            },
            "failed" => Outcome::Failed {
                closure_ok: ev["closure_ok"].as_bool().unwrap_or(true),
                deadlocks: ev["deadlocks"].as_u64().unwrap_or(0),
                livelock_len: ev["livelock_len"].as_u64(),
            },
            "over_budget" => Outcome::OverBudget {
                reason: ev["reason"].as_str().unwrap_or("unknown").to_owned(),
            },
            "error" => Outcome::Error {
                message: ev["message"].as_str().unwrap_or("unknown").to_owned(),
            },
            _ => return None,
        };
        Some(JobResult {
            spec,
            k,
            outcome,
            states,
            legit,
        })
    }
}

/// The local (parameterized, all-K-at-once) verdict of one spec, shared by
/// all of that spec's jobs and cross-tabulated against their global
/// outcomes in the report's soundness section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalVerdict {
    /// The local method proves strong self-stabilization for every K.
    Proven,
    /// The local method does not establish the property (which is *not* a
    /// refutation — the certificate is sufficient, not necessary).
    Unproven,
    /// The spec could not be parsed, so no local verdict exists.
    Error,
}

impl LocalVerdict {
    /// The canonical snake_case tag used in journal events and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            LocalVerdict::Proven => "proven",
            LocalVerdict::Unproven => "unproven",
            LocalVerdict::Error => "error",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_row_roundtrips_through_event_parsing() {
        let results = [
            JobResult {
                spec: "a.stab".into(),
                k: 3,
                outcome: Outcome::Verified,
                states: 8,
                legit: 2,
            },
            JobResult {
                spec: "b.stab".into(),
                k: 4,
                outcome: Outcome::Failed {
                    closure_ok: true,
                    deadlocks: 0,
                    livelock_len: Some(8),
                },
                states: 16,
                legit: 2,
            },
            JobResult {
                spec: "c.stab".into(),
                k: 20,
                outcome: Outcome::OverBudget {
                    reason: "states".into(),
                },
                states: 0,
                legit: 0,
            },
            JobResult {
                spec: "d.stab".into(),
                k: 2,
                outcome: Outcome::Error {
                    message: "parse error".into(),
                },
                states: 0,
                legit: 0,
            },
            JobResult {
                spec: "e.stab".into(),
                k: 5,
                outcome: Outcome::Panicked {
                    attempts: 3,
                    message: "index out of bounds".into(),
                },
                states: 0,
                legit: 0,
            },
        ];
        for r in &results {
            let row = r.report_row();
            assert_eq!(
                &JobResult::from_event(&row).expect("row parses back"),
                r,
                "roundtrip of {row}"
            );
        }
    }

    #[test]
    fn outcome_tags_are_stable() {
        assert_eq!(Outcome::Verified.tag(), "verified");
        assert_eq!(
            Outcome::OverBudget {
                reason: "deadline".into()
            }
            .tag(),
            "over_budget"
        );
        // Panicked degrades to the `failed` tag (the sweep must exit 2).
        assert_eq!(
            Outcome::Panicked {
                attempts: 2,
                message: "boom".into()
            }
            .tag(),
            "failed"
        );
        assert_eq!(LocalVerdict::Proven.tag(), "proven");
    }
}

//! Campaign-side telemetry: per-job phase breakdowns and engine counters,
//! scheduling metrics (pool steals, queue depth, retries, panics), and the
//! builders of the `--metrics` and `--trace` documents.
//!
//! The metrics document keeps the engine's **deterministic** counters
//! (identical for every worker count and engine thread count on a
//! completed job) strictly apart from **scheduling** numbers (steals,
//! queue depths, retries, `closure_checks`) and from durations — only the
//! first class is ever compared across runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use selfstab_telemetry::{
    EngineCountersSnapshot, Phase, PhaseSnapshot, PhaseTimes, Registry, TraceCollector,
};
use serde_json::{json, Value};

use crate::job::JobResult;
use crate::manifest::Manifest;

/// Telemetry of one job, accumulated across all of its retry attempts.
/// The runner creates it *outside* the panic net, so the phase time a
/// panicking attempt burned survives into the metrics document.
#[derive(Debug, Default)]
pub struct JobTelemetry {
    /// Per-phase time of this job, all attempts pooled.
    pub phases: PhaseTimes,
    /// Attempts started (1 + retries actually taken).
    pub attempts: AtomicU64,
    /// Engine counters of the attempt that produced the recorded outcome;
    /// only completed checks (`verified`/`failed` rows) have one.
    counters: Mutex<Option<EngineCountersSnapshot>>,
}

impl JobTelemetry {
    /// Stores the engine counters of the deciding attempt.
    pub fn set_counters(&self, snapshot: EngineCountersSnapshot) {
        *self.counters.lock().expect("job counters poisoned") = Some(snapshot);
    }

    /// The stored engine counters, if the check completed.
    pub fn counters(&self) -> Option<EngineCountersSnapshot> {
        *self.counters.lock().expect("job counters poisoned")
    }
}

/// One executed job's record in the metrics document.
#[derive(Debug)]
struct JobRecord {
    outcome: &'static str,
    attempts: u64,
    states: u64,
    counters: Option<EngineCountersSnapshot>,
    phases: PhaseSnapshot,
}

/// Everything the campaign records when telemetry is on: campaign-wide
/// phase totals, the scheduling registry, per-job records, and (under
/// `--trace`) the Chrome trace-event collector.
#[derive(Debug)]
pub(crate) struct CampaignTelemetry {
    /// Campaign-wide phase totals (every job's phases merged in).
    pub phases: PhaseTimes,
    /// Scheduling-side counters and histograms.
    pub registry: Registry,
    /// Trace collector; `None` unless tracing was requested.
    pub trace: Option<TraceCollector>,
    jobs: Mutex<BTreeMap<(String, usize), JobRecord>>,
}

impl CampaignTelemetry {
    /// Fresh telemetry; `trace` additionally arms the trace collector.
    pub fn new(trace: bool) -> Self {
        CampaignTelemetry {
            phases: PhaseTimes::new(),
            registry: Registry::new(),
            trace: trace.then(TraceCollector::new),
            jobs: Mutex::new(BTreeMap::new()),
        }
    }

    /// Runs `f` as one span of `phase` for the job `scope` describes:
    /// the duration lands in the job's [`PhaseTimes`] and, when tracing,
    /// as a complete event on the worker's trace lane.
    pub fn time<T>(&self, scope: &JobScope<'_>, phase: Phase, f: impl FnOnce() -> T) -> T {
        let ts = self.trace.as_ref().map(TraceCollector::now_us);
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        scope.job.phases.add(phase, elapsed);
        if let (Some(trace), Some(ts)) = (&self.trace, ts) {
            trace.complete(
                phase.name(),
                "job",
                scope.worker as u64,
                ts,
                elapsed.as_micros() as u64,
                json!({"spec": scope.spec, "k": scope.k}),
            );
        }
        out
    }

    /// Records an instant trace event (e.g. `job_panicked`) on the
    /// worker's lane; a no-op without `--trace`.
    pub fn instant(&self, scope: &JobScope<'_>, name: &str) {
        if let Some(trace) = &self.trace {
            trace.instant(
                name,
                "job",
                scope.worker as u64,
                json!({"spec": scope.spec, "k": scope.k}),
            );
        }
    }

    /// Folds one finished job into the campaign: merges its phases into
    /// the campaign totals, samples the per-phase and state-count
    /// histograms, aggregates the scheduling-dependent `closure_checks`,
    /// and files the per-job record for the metrics document.
    pub fn finish_job(&self, result: &JobResult, job: &JobTelemetry) {
        let phases = job.phases.snapshot();
        self.phases.merge(&phases);
        for phase in Phase::ALL {
            if phases.calls[phase.index()] > 0 {
                self.registry
                    .histogram(phase_histogram_name(phase))
                    .record(phases.micros[phase.index()]);
            }
        }
        let counters = job.counters();
        if let Some(c) = &counters {
            self.registry
                .histogram("job/states")
                .record(c.states_visited);
            self.registry
                .counter("engine/closure_checks")
                .fetch_add(c.closure_checks, Ordering::Relaxed);
        }
        self.jobs.lock().expect("job records poisoned").insert(
            (result.spec.clone(), result.k),
            JobRecord {
                outcome: result.outcome.tag(),
                attempts: job.attempts.load(Ordering::Relaxed).max(1),
                states: result.states,
                counters,
                phases,
            },
        );
    }

    /// Builds the metrics document. Jobs appear in manifest order (only
    /// the ones executed by this invocation — replayed cells carry no
    /// fresh telemetry), each with its outcome, attempt count, per-phase
    /// microseconds, and — for completed checks — the engine's
    /// deterministic counters.
    pub fn metrics_json(
        &self,
        manifest: &Manifest,
        fingerprint: &str,
        workers: usize,
        engine_threads: usize,
        replayed: usize,
    ) -> Value {
        let records = self.jobs.lock().expect("job records poisoned");
        let jobs = manifest.jobs();
        let mut rows = Vec::with_capacity(records.len());
        for job in &jobs {
            let Some(r) = records.get(&(job.spec.clone(), job.k)) else {
                continue;
            };
            let mut row = BTreeMap::new();
            row.insert("spec".to_owned(), Value::from(job.spec.as_str()));
            row.insert("k".to_owned(), Value::from(job.k as u64));
            row.insert("outcome".to_owned(), Value::from(r.outcome));
            row.insert("attempts".to_owned(), Value::from(r.attempts));
            row.insert("states".to_owned(), Value::from(r.states));
            row.insert(
                "counters".to_owned(),
                r.counters
                    .as_ref()
                    .map(EngineCountersSnapshot::deterministic_json)
                    .unwrap_or(Value::Null),
            );
            row.insert("phases_us".to_owned(), r.phases.to_json());
            rows.push(Value::Object(row));
        }
        let executed = rows.len();
        let mut campaign = BTreeMap::new();
        campaign.insert(
            "engine_threads".to_owned(),
            Value::from(engine_threads as u64),
        );
        campaign.insert("executed".to_owned(), Value::from(executed as u64));
        campaign.insert("fingerprint".to_owned(), Value::from(fingerprint));
        campaign.insert("jobs".to_owned(), Value::from(jobs.len() as u64));
        campaign.insert("replayed".to_owned(), Value::from(replayed as u64));
        campaign.insert("workers".to_owned(), Value::from(workers as u64));
        let mut doc = BTreeMap::new();
        doc.insert("campaign".to_owned(), Value::Object(campaign));
        doc.insert("jobs".to_owned(), Value::Array(rows));
        doc.insert(
            "phase_totals_us".to_owned(),
            self.phases.snapshot().to_json(),
        );
        doc.insert("scheduling".to_owned(), self.registry.snapshot_json());
        Value::Object(doc)
    }
}

/// The static name of a phase's per-job duration histogram.
fn phase_histogram_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Parse => "phase_us/parse",
        Phase::LocalAnalysis => "phase_us/local_analysis",
        Phase::FusedScan => "phase_us/fused_scan",
        Phase::LivelockDfs => "phase_us/livelock_dfs",
        Phase::JournalAppend => "phase_us/journal_append",
        Phase::RetryBackoff => "phase_us/retry_backoff",
        Phase::Synthesis => "phase_us/synthesis",
    }
}

/// A job's telemetry context on one worker: everything [`timed`] needs to
/// attribute a span.
pub(crate) struct JobScope<'a> {
    /// The campaign-wide sinks.
    pub tele: &'a CampaignTelemetry,
    /// This job's accumulator.
    pub job: &'a JobTelemetry,
    /// The pool worker running the attempt (the trace lane).
    pub worker: usize,
    /// The job's spec path (trace event args).
    pub spec: &'a str,
    /// The job's ring size (trace event args).
    pub k: usize,
}

/// Runs `f`, timing it as `phase` when a scope is present — the single
/// seam through which the runner instruments without branching at every
/// call site.
pub(crate) fn timed<T>(scope: Option<&JobScope<'_>>, phase: Phase, f: impl FnOnce() -> T) -> T {
    match scope {
        Some(s) => s.tele.time(s, phase, f),
        None => f(),
    }
}

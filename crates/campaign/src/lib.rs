//! `selfstab-campaign` — batch verification of whole `.stab` corpora.
//!
//! A **campaign** is the job matrix (spec × ring size) described by a
//! [`Manifest`]: every spec named by the manifest's paths/globs is checked
//! at every `K` in the manifest's range. Jobs run on a work-stealing pool
//! of scoped worker threads ([`pool`]), with per-job budgets (a state-count
//! cap and an optional wall-clock deadline) that degrade oversized `d^K`
//! instances to an [`Outcome::OverBudget`] instead of wedging the pool.
//!
//! Every job emits `queued`/`started`/`finished` events to an append-only
//! JSONL [`Journal`] that doubles as the checkpoint: replaying the journal
//! ([`journal::replay`]) recovers the set of completed jobs, so an
//! interrupted campaign resumes from where it stopped and re-executes only
//! the remainder. Each record is length- and CRC32-framed, so replay
//! tolerates a torn tail from a mid-write crash — it truncates at the
//! first corrupt record instead of erroring (see [`journal`]).
//!
//! The runner is chaos-hardened: a panicking job is caught
//! (`catch_unwind`), journaled as `job_panicked` telemetry, retried up to
//! [`CampaignConfig::retries`] times with deterministic exponential
//! backoff, and finally degraded to a failed [`Outcome::Panicked`] rather
//! than aborting the sweep. A campaign-wide interrupt token
//! ([`CampaignConfig::interrupt`]) winds the pool down cooperatively — the
//! SIGINT path of the CLI and the forced-cancel path of the deterministic
//! fault-injection harness ([`chaos`]) share it.
//!
//! The final [`report`] is canonical JSON: jobs are merged in manifest
//! order and no wall-clock time is stamped into the body, so the rendered
//! report is **byte-identical for every worker count and every
//! interrupt/resume split**. On top of the per-job verdicts it carries a
//! soundness section cross-tabulating the paper's *local* verdict (Theorems
//! 4.2 / 5.14, one analysis shared by all of a spec's jobs) against the
//! *global* model-checking outcome of every job — any `local proven` ×
//! `global failed` cell is a soundness disagreement and is listed
//! explicitly.
//!
//! ```no_run
//! use selfstab_campaign::{run_campaign, CampaignConfig, Manifest};
//!
//! let manifest = Manifest::from_file("campaign.json".as_ref())?;
//! let outcome = run_campaign(&manifest, &CampaignConfig::default())?;
//! println!("{}", outcome.rendered_report);
//! # Ok::<(), selfstab_campaign::CampaignError>(())
//! ```

#![forbid(unsafe_code)]

pub mod chaos;
pub mod job;
pub mod journal;
pub mod manifest;
pub mod pool;
pub mod report;
pub mod runner;
pub mod telemetry;

pub use chaos::ChaosPlan;
pub use job::{JobResult, JobSpec, LocalVerdict, Outcome};
pub use journal::{FrameReplay, FsyncPolicy, Journal, Replay};
pub use manifest::Manifest;
pub use pool::{JobHandle, JobOutput, ServicePool};
pub use runner::{run_campaign, CampaignConfig, CampaignError, CampaignOutcome};

//! Campaign manifests: which specs, which ring sizes, which budgets.
//!
//! A manifest is a small JSON document next to the corpus it describes:
//!
//! ```json
//! {
//!   "specs": ["specs/*.stab"],
//!   "k_from": 2,
//!   "k_to": 8,
//!   "max_states": 10000000,
//!   "timeout_ms": 30000,
//!   "engine_threads": 1
//! }
//! ```
//!
//! * `specs` — literal paths or `*` globs, resolved relative to the
//!   manifest file; glob matches are sorted so the expansion (and with it
//!   the job and report order) is deterministic.
//! * `k_from`/`k_to` — the inclusive ring-size range of the job matrix.
//! * `max_states` — per-job state budget: a job whose `d^K` exceeds it is
//!   reported [`Outcome::OverBudget`](crate::Outcome) without running.
//! * `timeout_ms` — optional per-job wall-clock deadline (cooperatively
//!   polled by the engine; an aborted job also degrades to `OverBudget`).
//! * `engine_threads` — intra-check parallelism handed to
//!   [`EngineConfig`](selfstab_global::EngineConfig), composable with the
//!   campaign's own `--jobs` worker count.
//! * `symmetry` — optional rotation-symmetry reduction policy for every
//!   job: `"auto"` (default), `"full"`, or `"reduced"`. Like thread
//!   counts, the mode never changes any verdict and is therefore excluded
//!   from the fingerprint.
//! * `prune` — optional monotone lattice pruning toggle (default `true`)
//!   handed to any synthesis runs launched from this campaign. Pruning is
//!   outcome-invariant (the engine's result is byte-identical either
//!   way), so — like `symmetry` — it is excluded from the fingerprint.

use std::path::{Path, PathBuf};

use crate::job::JobSpec;
use crate::runner::CampaignError;

/// A parsed, glob-expanded campaign manifest.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Directory the manifest lives in; spec paths resolve against it.
    pub base_dir: PathBuf,
    /// Expanded spec paths relative to `base_dir`, in manifest order
    /// (globs sorted lexicographically).
    pub specs: Vec<String>,
    /// First ring size of the matrix (inclusive).
    pub k_from: usize,
    /// Last ring size of the matrix (inclusive).
    pub k_to: usize,
    /// Per-job state budget (`d^K` above this is over budget).
    pub max_states: u64,
    /// Optional per-job wall-clock deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Worker threads *inside* each job's fused scan.
    pub engine_threads: usize,
    /// Rotation-symmetry reduction policy for every job's engine.
    pub symmetry: selfstab_global::SymmetryMode,
    /// Monotone lattice pruning for synthesis runs (outcome-invariant).
    pub prune: bool,
}

impl Manifest {
    /// Reads and expands a manifest file.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] on IO problems, malformed JSON, missing
    /// fields, an empty spec expansion, or `k_from > k_to` / `k_from == 0`.
    pub fn from_file(path: &Path) -> Result<Self, CampaignError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CampaignError::Io(format!("cannot read `{}`: {e}", path.display())))?;
        let base_dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
        Self::from_json_text(&text, &base_dir)
    }

    /// Parses manifest JSON with spec paths resolved against `base_dir`.
    ///
    /// # Errors
    ///
    /// As for [`Manifest::from_file`], minus the IO of the manifest itself.
    pub fn from_json_text(text: &str, base_dir: &Path) -> Result<Self, CampaignError> {
        let v = serde_json::from_str(text)
            .map_err(|e| CampaignError::Manifest(format!("malformed manifest JSON: {e}")))?;
        let patterns = v["specs"]
            .as_array()
            .ok_or_else(|| CampaignError::Manifest("manifest needs a `specs` array".into()))?;
        let mut specs = Vec::new();
        for p in patterns {
            let pattern = p
                .as_str()
                .ok_or_else(|| CampaignError::Manifest("`specs` entries must be strings".into()))?;
            let mut expanded = expand_pattern(base_dir, pattern)?;
            if expanded.is_empty() {
                return Err(CampaignError::Manifest(format!(
                    "spec pattern `{pattern}` matched nothing"
                )));
            }
            specs.append(&mut expanded);
        }
        if specs.is_empty() {
            // An empty matrix would sweep nothing and still render a clean
            // report — a silent no-op is worse than a loud refusal.
            return Err(CampaignError::Manifest(
                "manifest matched no spec files (`specs` expanded to nothing)".into(),
            ));
        }
        let k_from = v["k_from"]
            .as_u64()
            .ok_or_else(|| CampaignError::Manifest("manifest needs numeric `k_from`".into()))?
            as usize;
        let k_to = v["k_to"]
            .as_u64()
            .ok_or_else(|| CampaignError::Manifest("manifest needs numeric `k_to`".into()))?
            as usize;
        if k_from == 0 || k_from > k_to {
            return Err(CampaignError::Manifest(format!(
                "ring-size range {k_from}..={k_to} is empty or starts at 0"
            )));
        }
        let max_states = v["max_states"]
            .as_u64()
            .unwrap_or(selfstab_global::instance::DEFAULT_MAX_STATES);
        let timeout_ms = v["timeout_ms"].as_u64();
        let engine_threads = v["engine_threads"].as_u64().unwrap_or(1) as usize;
        let symmetry = match v["symmetry"].as_str() {
            None => selfstab_global::SymmetryMode::default(),
            Some(mode) => mode.parse().map_err(|e: String| {
                CampaignError::Manifest(format!("manifest `symmetry`: {e}"))
            })?,
        };
        let prune = match &v["prune"] {
            serde_json::Value::Null => true,
            serde_json::Value::Bool(b) => *b,
            _ => {
                return Err(CampaignError::Manifest(
                    "manifest `prune` must be a boolean".into(),
                ))
            }
        };
        Ok(Manifest {
            base_dir: base_dir.to_path_buf(),
            specs,
            k_from,
            k_to,
            max_states,
            timeout_ms,
            engine_threads,
            symmetry,
            prune,
        })
    }

    /// The full job matrix in canonical (manifest) order: specs in
    /// expansion order, each at `k_from..=k_to` ascending.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut out = Vec::with_capacity(self.specs.len() * (self.k_to - self.k_from + 1));
        for (spec_index, spec) in self.specs.iter().enumerate() {
            for k in self.k_from..=self.k_to {
                out.push(JobSpec {
                    spec_index,
                    spec: spec.clone(),
                    k,
                });
            }
        }
        out
    }

    /// The absolute path of spec `spec_index`.
    pub fn spec_path(&self, spec_index: usize) -> PathBuf {
        self.base_dir.join(&self.specs[spec_index])
    }

    /// A stable fingerprint of the semantic manifest fields (specs, K
    /// range, budgets), used to refuse resuming a journal written by a
    /// different campaign. Worker counts, engine threads, the symmetry
    /// mode and the prune toggle are excluded: they never change any
    /// verdict.
    pub fn fingerprint(&self) -> String {
        // FNV-1a over a canonical rendering; no external hash deps.
        let mut canon = String::new();
        for s in &self.specs {
            canon.push_str(s);
            canon.push('\n');
        }
        canon.push_str(&format!(
            "k={}..={};max_states={};timeout_ms={:?}",
            self.k_from, self.k_to, self.max_states, self.timeout_ms
        ));
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in canon.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }
}

/// Expands one manifest pattern relative to `base_dir`. Literal paths pass
/// through; a pattern whose final segment contains `*` matches directory
/// entries with a simple wildcard, sorted lexicographically.
fn expand_pattern(base_dir: &Path, pattern: &str) -> Result<Vec<String>, CampaignError> {
    if !pattern.contains('*') {
        return Ok(vec![pattern.to_owned()]);
    }
    let (dir_part, file_pattern) = match pattern.rsplit_once('/') {
        Some((d, f)) => (d, f),
        None => ("", pattern),
    };
    if dir_part.contains('*') {
        return Err(CampaignError::Manifest(format!(
            "`*` is only supported in the final path segment: `{pattern}`"
        )));
    }
    let dir = base_dir.join(dir_part);
    let entries = std::fs::read_dir(&dir)
        .map_err(|e| CampaignError::Io(format!("cannot list `{}`: {e}", dir.display())))?;
    let mut matches = Vec::new();
    for entry in entries {
        let entry = entry
            .map_err(|e| CampaignError::Io(format!("cannot list `{}`: {e}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        if wildcard_match(file_pattern, name) {
            matches.push(if dir_part.is_empty() {
                name.to_owned()
            } else {
                format!("{dir_part}/{name}")
            });
        }
    }
    matches.sort();
    Ok(matches)
}

/// Glob-lite: `*` matches any (possibly empty) run of characters; all other
/// characters match literally.
fn wildcard_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    // Classic two-pointer wildcard matching with backtracking to the most
    // recent star.
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut backtrack) = (None::<usize>, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            backtrack = ni;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            backtrack += 1;
            ni = backtrack;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_semantics() {
        assert!(wildcard_match("*.stab", "agreement.stab"));
        assert!(wildcard_match("agree*", "agreement.stab"));
        assert!(wildcard_match("*", "anything"));
        assert!(wildcard_match("a*b*c", "aXbYc"));
        assert!(!wildcard_match("*.stab", "agreement.json"));
        assert!(!wildcard_match("x*.stab", "agreement.stab"));
    }

    fn specs_dir() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn glob_expansion_is_sorted_and_relative() {
        let specs = expand_pattern(&specs_dir(), "specs/*.stab").unwrap();
        assert!(specs.len() >= 10, "expected the corpus, got {specs:?}");
        let mut sorted = specs.clone();
        sorted.sort();
        assert_eq!(specs, sorted);
        assert!(specs.iter().all(|s| s.starts_with("specs/")));
    }

    #[test]
    fn manifest_parses_and_fingerprints_stably() {
        let text = r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 4, "max_states": 4096}"#;
        let m = Manifest::from_json_text(text, &specs_dir()).unwrap();
        assert_eq!(m.k_from, 2);
        assert_eq!(m.k_to, 4);
        assert_eq!(m.max_states, 4096);
        assert_eq!(m.jobs().len(), m.specs.len() * 3);
        let again = Manifest::from_json_text(text, &specs_dir()).unwrap();
        assert_eq!(m.fingerprint(), again.fingerprint());
        let other = Manifest::from_json_text(
            r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 5}"#,
            &specs_dir(),
        )
        .unwrap();
        assert_ne!(m.fingerprint(), other.fingerprint());
    }

    #[test]
    fn manifest_symmetry_parses_and_never_perturbs_the_fingerprint() {
        let dir = specs_dir();
        let plain = r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 4}"#;
        let reduced =
            r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 4, "symmetry": "reduced"}"#;
        let a = Manifest::from_json_text(plain, &dir).unwrap();
        let b = Manifest::from_json_text(reduced, &dir).unwrap();
        assert_eq!(a.symmetry, selfstab_global::SymmetryMode::Auto);
        assert_eq!(b.symmetry, selfstab_global::SymmetryMode::Reduced);
        // The mode never changes a verdict, so journals must stay
        // resumable across it — exactly like engine_threads.
        assert_eq!(a.fingerprint(), b.fingerprint());
        let bad = Manifest::from_json_text(
            r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 4, "symmetry": "orbit"}"#,
            &dir,
        )
        .expect_err("unknown symmetry mode is an error");
        assert!(bad.to_string().contains("symmetry"), "{bad}");
    }

    #[test]
    fn manifest_prune_parses_and_never_perturbs_the_fingerprint() {
        let dir = specs_dir();
        let plain = r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 4}"#;
        let full = r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 4, "prune": false}"#;
        let a = Manifest::from_json_text(plain, &dir).unwrap();
        let b = Manifest::from_json_text(full, &dir).unwrap();
        assert!(a.prune, "pruning defaults on");
        assert!(!b.prune);
        // Pruning is outcome-invariant, so journals must stay resumable
        // across it — exactly like symmetry and engine_threads.
        assert_eq!(a.fingerprint(), b.fingerprint());
        let bad = Manifest::from_json_text(
            r#"{"specs": ["specs/*.stab"], "k_from": 2, "k_to": 4, "prune": "on"}"#,
            &dir,
        )
        .expect_err("non-boolean prune is an error");
        assert!(bad.to_string().contains("prune"), "{bad}");
    }

    #[test]
    fn manifest_rejects_bad_input() {
        let dir = specs_dir();
        assert!(Manifest::from_json_text("{", &dir).is_err());
        assert!(Manifest::from_json_text(r#"{"specs": []}"#, &dir).is_err());
        // An empty expansion must fail loudly even when the K range is
        // well-formed — a zero-job campaign would render a clean report.
        let empty = Manifest::from_json_text(r#"{"specs": [], "k_from": 2, "k_to": 3}"#, &dir)
            .expect_err("empty spec expansion is an error");
        assert!(
            empty.to_string().contains("matched no spec files"),
            "diagnostic names the problem: {empty}"
        );
        assert!(Manifest::from_json_text(
            r#"{"specs": ["specs/*.stab"], "k_from": 5, "k_to": 2}"#,
            &dir
        )
        .is_err());
        assert!(Manifest::from_json_text(
            r#"{"specs": ["specs/no_such_*.stab"], "k_from": 2, "k_to": 3}"#,
            &dir
        )
        .is_err());
    }

    #[test]
    fn jobs_enumerate_in_manifest_order() {
        let m = Manifest::from_json_text(
            r#"{"specs": ["specs/mis.stab", "specs/agreement.stab"], "k_from": 2, "k_to": 3}"#,
            &specs_dir(),
        )
        .unwrap();
        let jobs = m.jobs();
        let cells: Vec<(usize, usize)> = jobs.iter().map(|j| (j.spec_index, j.k)).collect();
        assert_eq!(cells, vec![(0, 2), (0, 3), (1, 2), (1, 3)]);
        assert_eq!(jobs[0].spec, "specs/mis.stab");
    }
}

//! Deterministic fault injection for the campaign runner.
//!
//! The paper's subject is recovery from transient faults; this module
//! turns that lens on the toolchain itself. A [`ChaosPlan`] is a seeded,
//! reproducible adversary that the runner consults at well-defined points:
//!
//! * **worker panics** — [`ChaosPlan::should_panic`] fires inside the
//!   runner's `catch_unwind` region, exercising panic isolation and the
//!   retry-with-backoff path;
//! * **forced cancellation** — [`ChaosPlan::should_cancel`] fires the
//!   campaign's interrupt token, exercising the same wind-down path as a
//!   SIGINT (journal sync, partial report, resumable exit);
//! * **torn writes** — [`ChaosPlan::truncate_journal`] chops the journal
//!   at a seeded byte offset *between* runs, exercising the framed
//!   journal's truncate-at-first-corruption replay.
//!
//! All decisions are pure functions of `(seed, spec, k, attempt)` hashed
//! with FNV-1a, plus bounded budgets derived from the seed — so a chaos
//! run is replayable from its seed and every plan injects only finitely
//! many faults. The invariant the property suite pins down: **interrupt
//! anywhere, resume, and the final report is byte-identical to the
//! fault-free run** (see `tests/chaos.rs`).
//!
//! The plan is surfaced two ways: the hidden `selfstab sweep --chaos
//! <seed>` flag (builds [`ChaosPlan::from_seed`]) and this test API.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Mutable injection budgets, shared by every worker's view of the plan.
#[derive(Debug, Default)]
struct ChaosState {
    panics_left: AtomicU64,
    cancels_left: AtomicU64,
}

/// A seeded, budgeted fault-injection plan (see the module docs).
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    seed: u64,
    /// Fire on every attempt of every job, ignoring hash and budget —
    /// the "always-panicking job" mode of the acceptance tests.
    always_panic: bool,
    state: Arc<ChaosState>,
}

impl ChaosPlan {
    /// A plan whose budgets are derived from `seed`: up to 4 injected
    /// panics and up to 1 forced cancellation per run.
    pub fn from_seed(seed: u64) -> Self {
        let panics = fnv(&[seed, 0x70616e6963]) % 5; // 0..=4
        let cancels = fnv(&[seed, 0x63616e63656c]) % 2; // 0..=1
        ChaosPlan::with_budgets(seed, panics, cancels)
    }

    /// A plan with explicit budgets (test API).
    pub fn with_budgets(seed: u64, panics: u64, cancels: u64) -> Self {
        ChaosPlan {
            seed,
            always_panic: false,
            state: Arc::new(ChaosState {
                panics_left: AtomicU64::new(panics),
                cancels_left: AtomicU64::new(cancels),
            }),
        }
    }

    /// A plan that panics every attempt of every job and never cancels —
    /// the adversary that pins down "exhausted retries degrade to a failed
    /// outcome instead of a pool abort".
    pub fn always_panic() -> Self {
        ChaosPlan {
            seed: 0,
            always_panic: true,
            state: Arc::new(ChaosState::default()),
        }
    }

    /// Should this attempt of `(spec, k)` be killed by an injected panic?
    /// Decided by seed hash (roughly one attempt in three), gated by the
    /// plan's remaining panic budget.
    pub fn should_panic(&self, spec: &str, k: usize, attempt: u32) -> bool {
        if self.always_panic {
            return true;
        }
        let h = fnv(&[
            self.seed,
            0x0070_616e_6963,
            fnv_str(spec),
            k as u64,
            attempt as u64,
        ]);
        h.is_multiple_of(3) && take(&self.state.panics_left)
    }

    /// Should reaching `(spec, k)` force-cancel the whole sweep (the chaos
    /// analogue of a SIGINT landing mid-run)? Decided by seed hash
    /// (roughly one job in four), gated by the cancel budget.
    pub fn should_cancel(&self, spec: &str, k: usize) -> bool {
        let h = fnv(&[self.seed, 0x6361_6e63_656c, fnv_str(spec), k as u64]);
        h.is_multiple_of(4) && take(&self.state.cancels_left)
    }

    /// Torn-write injection: truncates the file at a seeded byte offset
    /// strictly inside its current length (a no-op on an empty file).
    /// Returns the new length.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from metadata/truncate.
    pub fn truncate_journal(path: &Path, seed: u64) -> std::io::Result<u64> {
        let len = std::fs::metadata(path)?.len();
        if len == 0 {
            return Ok(0);
        }
        let new_len = fnv(&[seed, 0x746f_726e, len]) % len;
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(new_len)?;
        Ok(new_len)
    }
}

/// Consumes one unit of `budget` if any remains.
fn take(budget: &AtomicU64) -> bool {
    budget
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// FNV-1a over a word sequence (the repo's standard no-dependency hash).
fn fnv(words: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// FNV-1a over a string's bytes.
fn fnv_str(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("selfstab-chaos-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_budgeted() {
        // Two plans with the same seed agree on every decision they have
        // budget for, and the budget bounds total injections.
        let jobs: Vec<(String, usize)> = (0..40).map(|i| (format!("s{}.stab", i % 7), i)).collect();
        let a = ChaosPlan::from_seed(42);
        let b = ChaosPlan::from_seed(42);
        let fired_a: Vec<bool> = jobs.iter().map(|(s, k)| a.should_panic(s, *k, 0)).collect();
        let fired_b: Vec<bool> = jobs.iter().map(|(s, k)| b.should_panic(s, *k, 0)).collect();
        assert_eq!(fired_a, fired_b);
        assert!(fired_a.iter().filter(|&&f| f).count() <= 4);
        let cancels = jobs.iter().filter(|(s, k)| a.should_cancel(s, *k)).count();
        assert!(cancels <= 1);
    }

    #[test]
    fn budgets_are_shared_across_clones() {
        // Clones share state (as the workers of one run do): the budget is
        // global to the plan, not per-clone.
        let plan = ChaosPlan::with_budgets(7, 1, 0);
        let clone = plan.clone();
        let mut fired = 0;
        for k in 0..100 {
            if plan.should_panic("x.stab", k, 0) || clone.should_panic("y.stab", k, 0) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
    }

    #[test]
    fn always_panic_ignores_budgets() {
        let plan = ChaosPlan::always_panic();
        for attempt in 0..10 {
            assert!(plan.should_panic("any.stab", 3, attempt));
        }
        assert!(!plan.should_cancel("any.stab", 3));
    }

    #[test]
    fn journal_truncation_is_seeded_and_in_bounds() {
        let path = tmp("truncate.bin");
        std::fs::write(&path, vec![0xAB; 1000]).unwrap();
        let a = ChaosPlan::truncate_journal(&path, 5).unwrap();
        assert!(a < 1000);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), a);
        // Truncating an empty file is a no-op.
        std::fs::write(&path, b"").unwrap();
        assert_eq!(ChaosPlan::truncate_journal(&path, 5).unwrap(), 0);
    }
}

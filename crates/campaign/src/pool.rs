//! A small work-stealing pool of scoped worker threads.
//!
//! Campaign jobs are wildly uneven — `d^K` grows geometrically in `K`, so
//! the last job of a spec can dwarf the rest of its row put together. A
//! fixed pre-partition would leave workers idle behind one straggler;
//! instead each worker owns a deque seeded round-robin with job indices,
//! pops work from its own front (LIFO-ish locality on the seeded prefix),
//! and when empty **steals from the back** of a sibling's deque — the
//! classic split that keeps owner and thief on opposite ends and the big
//! trailing jobs spread across the pool.
//!
//! The pool is deliberately oblivious to what a job *is*: it runs
//! `run(worker, job_index)` for every index exactly once and returns the
//! results indexed by job, so callers get determinism-by-construction —
//! scheduling can never reorder results.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `jobs` closures on `workers` scoped threads with work stealing.
///
/// Returns one result per job, in job-index order regardless of which
/// worker ran what. `workers == 0` is treated as 1; a single worker runs
/// everything inline in seed order.
pub fn run_jobs<T, F>(workers: usize, jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let workers = workers.max(1).min(jobs.max(1));
    // Seed round-robin: job j starts on deque j % workers, so every worker
    // begins with a share of every spec's K-row (cheap small-K jobs first,
    // the heavy tail interleaved across the pool).
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..jobs)
                    .filter(|j| j % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let run = &run;
            scope.spawn(move || loop {
                let job = next_job(deques, w);
                let Some(job) = job else {
                    break;
                };
                let result = run(w, job);
                *slots[job].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index is claimed exactly once")
        })
        .collect()
}

/// Pops the next job for worker `w`: own front first, then steal from the
/// back of the first non-empty sibling deque (scanning from `w + 1`).
fn next_job(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(job) = deques[w].lock().expect("deque poisoned").pop_front() {
        return Some(job);
    }
    for offset in 1..deques.len() {
        let victim = (w + offset) % deques.len();
        if let Some(job) = deques[victim].lock().expect("deque poisoned").pop_back() {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_job_runs_exactly_once_in_index_order() {
        for workers in [1, 2, 4, 7] {
            let counter = AtomicUsize::new(0);
            let results = run_jobs(workers, 23, |_w, job| {
                counter.fetch_add(1, Ordering::Relaxed);
                job * 10
            });
            assert_eq!(counter.load(Ordering::Relaxed), 23, "workers={workers}");
            assert_eq!(
                results,
                (0..23).map(|j| j * 10).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn stealing_drains_uneven_loads() {
        // One giant job seeded on worker 0; the rest tiny. With stealing,
        // the tiny jobs all finish even though worker 0 is stuck.
        let results = run_jobs(4, 16, |_w, job| {
            if job == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            job
        });
        assert_eq!(results.len(), 16);
    }

    #[test]
    fn zero_workers_and_zero_jobs_are_fine() {
        assert!(run_jobs(0, 0, |_w, j| j).is_empty());
        assert_eq!(run_jobs(0, 3, |_w, j| j), vec![0, 1, 2]);
    }
}

//! A small work-stealing pool of scoped worker threads.
//!
//! Campaign jobs are wildly uneven — `d^K` grows geometrically in `K`, so
//! the last job of a spec can dwarf the rest of its row put together. A
//! fixed pre-partition would leave workers idle behind one straggler;
//! instead each worker owns a deque seeded round-robin with job indices,
//! pops work from its own front (LIFO-ish locality on the seeded prefix),
//! and when empty **steals from the back** of a sibling's deque — the
//! classic split that keeps owner and thief on opposite ends and the big
//! trailing jobs spread across the pool.
//!
//! The pool is deliberately oblivious to what a job *is*: it runs
//! `run(worker, job_index)` for every index exactly once and returns the
//! results indexed by job, so callers get determinism-by-construction —
//! scheduling can never reorder results.
//!
//! **Panic isolation**: a panicking job must not poison the pool. Each
//! `run` call is wrapped in `catch_unwind`; a caught panic is stashed and
//! the worker moves on to its next job, so every other job still executes
//! exactly once. The first caught payload is re-raised (`resume_unwind`)
//! only after the pool drains — callers that want panics to become data
//! (the campaign runner does) catch them inside their own closure, and
//! then the pool-level net never fires.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use selfstab_telemetry::{Histogram, Registry};

/// Scheduling telemetry of one pool run: how often workers ran dry and
/// stole, and how deep their own deques were when they popped. Pure
/// mechanics — scheduling-dependent by construction, so these numbers
/// live in the metrics document's scheduling section, never in anything
/// that must be deterministic.
#[derive(Debug)]
pub struct PoolStats {
    /// Jobs taken from a sibling's deque rather than the worker's own.
    pub steals: Arc<AtomicU64>,
    /// Own-deque depth observed at each pop (after removing the job).
    pub queue_depth: Arc<Histogram>,
}

impl PoolStats {
    /// Stats wired into `registry` as `pool/steals` and
    /// `pool/queue_depth`, so a registry snapshot includes them.
    pub fn from_registry(registry: &Registry) -> Self {
        PoolStats {
            steals: registry.counter("pool/steals"),
            queue_depth: registry.histogram("pool/queue_depth"),
        }
    }
}

/// Runs `jobs` closures on `workers` scoped threads with work stealing.
///
/// Returns one result per job, in job-index order regardless of which
/// worker ran what. `workers == 0` is treated as 1; a single worker runs
/// everything inline in seed order.
///
/// # Panics
///
/// If `run` panics for some job, every *other* job still runs to
/// completion and the first caught panic payload is then re-raised from
/// the calling thread.
pub fn run_jobs<T, F>(workers: usize, jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    run_jobs_with_stats(workers, jobs, None, run)
}

/// [`run_jobs`] with optional scheduling telemetry: steal counts and
/// queue-depth samples land in `stats`. The results are identical with
/// and without stats — observation never steers scheduling.
pub fn run_jobs_with_stats<T, F>(
    workers: usize,
    jobs: usize,
    stats: Option<&PoolStats>,
    run: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let workers = workers.max(1).min(jobs.max(1));
    // Seed round-robin: job j starts on deque j % workers, so every worker
    // begins with a share of every spec's K-row (cheap small-K jobs first,
    // the heavy tail interleaved across the pool).
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..jobs)
                    .filter(|j| j % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let run = &run;
            let panicked = &panicked;
            scope.spawn(move || loop {
                let job = next_job(deques, w, stats);
                let Some(job) = job else {
                    break;
                };
                match catch_unwind(AssertUnwindSafe(|| run(w, job))) {
                    Ok(result) => {
                        *slots[job].lock().expect("result slot poisoned") = Some(result);
                    }
                    Err(payload) => {
                        let mut first = panicked.lock().expect("panic slot poisoned");
                        first.get_or_insert(payload);
                    }
                }
            });
        }
    });

    if let Some(payload) = panicked.into_inner().expect("panic slot poisoned") {
        resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index is claimed exactly once")
        })
        .collect()
}

/// Pops the next job for worker `w`: own front first, then steal from the
/// back of the first non-empty sibling deque (scanning from `w + 1`).
fn next_job(
    deques: &[Mutex<VecDeque<usize>>],
    w: usize,
    stats: Option<&PoolStats>,
) -> Option<usize> {
    {
        let mut own = deques[w].lock().expect("deque poisoned");
        if let Some(job) = own.pop_front() {
            if let Some(s) = stats {
                s.queue_depth.record(own.len() as u64);
            }
            return Some(job);
        }
    }
    for offset in 1..deques.len() {
        let victim = (w + offset) % deques.len();
        if let Some(job) = deques[victim].lock().expect("deque poisoned").pop_back() {
            if let Some(s) = stats {
                s.steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_job_runs_exactly_once_in_index_order() {
        for workers in [1, 2, 4, 7] {
            let counter = AtomicUsize::new(0);
            let results = run_jobs(workers, 23, |_w, job| {
                counter.fetch_add(1, Ordering::Relaxed);
                job * 10
            });
            assert_eq!(counter.load(Ordering::Relaxed), 23, "workers={workers}");
            assert_eq!(
                results,
                (0..23).map(|j| j * 10).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn stealing_drains_uneven_loads() {
        // One giant job seeded on worker 0; the rest tiny. With stealing,
        // the tiny jobs all finish even though worker 0 is stuck.
        let results = run_jobs(4, 16, |_w, job| {
            if job == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            job
        });
        assert_eq!(results.len(), 16);
    }

    #[test]
    fn zero_workers_and_zero_jobs_are_fine() {
        assert!(run_jobs(0, 0, |_w, j| j).is_empty());
        assert_eq!(run_jobs(0, 3, |_w, j| j), vec![0, 1, 2]);
    }

    #[test]
    fn stats_observe_every_pop_without_changing_results() {
        // Every job is either popped from its owner's deque (one
        // queue-depth sample) or stolen (one steal tick) — the two tallies
        // partition the job count, and observation never reorders results.
        let registry = Registry::new();
        let stats = PoolStats::from_registry(&registry);
        let results = run_jobs_with_stats(4, 16, Some(&stats), |_w, job| {
            if job == 0 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            job
        });
        assert_eq!(results, (0..16).collect::<Vec<_>>());
        let steals = stats.steals.load(Ordering::Relaxed);
        let pops = stats.queue_depth.snapshot().count;
        assert_eq!(steals + pops, 16, "steals={steals} pops={pops}");
    }

    #[test]
    fn a_panicking_job_does_not_poison_its_siblings() {
        // Job 7 panics; every other job must still run exactly once, on
        // every pool size (including the single inline worker), and the
        // panic payload must resurface afterwards from the calling thread.
        for workers in [1, 4] {
            let ran = AtomicUsize::new(0);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_jobs(workers, 23, |_w, job| {
                    if job == 7 {
                        panic!("job 7 exploded");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                    job
                })
            }))
            .expect_err("the stashed panic re-raises after the drain");
            assert_eq!(
                ran.load(Ordering::Relaxed),
                22,
                "workers={workers}: all surviving jobs ran"
            );
            assert_eq!(
                caught.downcast_ref::<&str>().copied(),
                Some("job 7 exploded"),
                "workers={workers}: original payload preserved"
            );
        }
    }
}

//! A small work-stealing pool of scoped worker threads.
//!
//! Campaign jobs are wildly uneven — `d^K` grows geometrically in `K`, so
//! the last job of a spec can dwarf the rest of its row put together. A
//! fixed pre-partition would leave workers idle behind one straggler;
//! instead each worker owns a deque seeded round-robin with job indices,
//! pops work from its own front (LIFO-ish locality on the seeded prefix),
//! and when empty **steals from the back** of a sibling's deque — the
//! classic split that keeps owner and thief on opposite ends and the big
//! trailing jobs spread across the pool.
//!
//! The pool is deliberately oblivious to what a job *is*: it runs
//! `run(worker, job_index)` for every index exactly once and returns the
//! results indexed by job, so callers get determinism-by-construction —
//! scheduling can never reorder results.
//!
//! **Panic isolation**: a panicking job must not poison the pool. Each
//! `run` call is wrapped in `catch_unwind`; a caught panic is stashed and
//! the worker moves on to its next job, so every other job still executes
//! exactly once. The first caught payload is re-raised (`resume_unwind`)
//! only after the pool drains — callers that want panics to become data
//! (the campaign runner does) catch them inside their own closure, and
//! then the pool-level net never fires.

//! Batch pools drain and return; long-running callers (the `selfstab
//! serve` daemon) instead need workers that outlive any one submission.
//! [`ServicePool`] is that persistent counterpart: jobs arrive over time
//! through [`ServicePool::submit`], each returning a [`JobHandle`] the
//! caller can poll or block on, with the same panic-isolation contract —
//! a panicking job resolves its own handle to an error and the workers
//! march on.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use selfstab_telemetry::{Histogram, Registry};

/// Scheduling telemetry of one pool run: how often workers ran dry and
/// stole, and how deep their own deques were when they popped. Pure
/// mechanics — scheduling-dependent by construction, so these numbers
/// live in the metrics document's scheduling section, never in anything
/// that must be deterministic.
#[derive(Debug)]
pub struct PoolStats {
    /// Jobs taken from a sibling's deque rather than the worker's own.
    pub steals: Arc<AtomicU64>,
    /// Own-deque depth observed at each pop (after removing the job).
    pub queue_depth: Arc<Histogram>,
}

impl PoolStats {
    /// Stats wired into `registry` as `pool/steals` and
    /// `pool/queue_depth`, so a registry snapshot includes them.
    pub fn from_registry(registry: &Registry) -> Self {
        PoolStats {
            steals: registry.counter("pool/steals"),
            queue_depth: registry.histogram("pool/queue_depth"),
        }
    }
}

/// Runs `jobs` closures on `workers` scoped threads with work stealing.
///
/// Returns one result per job, in job-index order regardless of which
/// worker ran what. `workers == 0` is treated as 1; a single worker runs
/// everything inline in seed order.
///
/// # Panics
///
/// If `run` panics for some job, every *other* job still runs to
/// completion and the first caught panic payload is then re-raised from
/// the calling thread.
pub fn run_jobs<T, F>(workers: usize, jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    run_jobs_with_stats(workers, jobs, None, run)
}

/// [`run_jobs`] with optional scheduling telemetry: steal counts and
/// queue-depth samples land in `stats`. The results are identical with
/// and without stats — observation never steers scheduling.
pub fn run_jobs_with_stats<T, F>(
    workers: usize,
    jobs: usize,
    stats: Option<&PoolStats>,
    run: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let workers = workers.max(1).min(jobs.max(1));
    // Seed round-robin: job j starts on deque j % workers, so every worker
    // begins with a share of every spec's K-row (cheap small-K jobs first,
    // the heavy tail interleaved across the pool).
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..jobs)
                    .filter(|j| j % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let run = &run;
            let panicked = &panicked;
            scope.spawn(move || loop {
                let job = next_job(deques, w, stats);
                let Some(job) = job else {
                    break;
                };
                match catch_unwind(AssertUnwindSafe(|| run(w, job))) {
                    Ok(result) => {
                        *slots[job].lock().expect("result slot poisoned") = Some(result);
                    }
                    Err(payload) => {
                        let mut first = panicked.lock().expect("panic slot poisoned");
                        first.get_or_insert(payload);
                    }
                }
            });
        }
    });

    if let Some(payload) = panicked.into_inner().expect("panic slot poisoned") {
        resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index is claimed exactly once")
        })
        .collect()
}

/// Pops the next job for worker `w`: own front first, then steal from the
/// back of the first non-empty sibling deque (scanning from `w + 1`).
fn next_job(
    deques: &[Mutex<VecDeque<usize>>],
    w: usize,
    stats: Option<&PoolStats>,
) -> Option<usize> {
    {
        let mut own = deques[w].lock().expect("deque poisoned");
        if let Some(job) = own.pop_front() {
            if let Some(s) = stats {
                s.queue_depth.record(own.len() as u64);
            }
            return Some(job);
        }
    }
    for offset in 1..deques.len() {
        let victim = (w + offset) % deques.len();
        if let Some(job) = deques[victim].lock().expect("deque poisoned").pop_back() {
            if let Some(s) = stats {
                s.steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(job);
        }
    }
    None
}

/// The terminal state of a [`JobHandle`]: the job's value, or the
/// rendered panic payload if the job crashed (isolated to this handle —
/// the worker survives), or a note that the pool shut down before the job
/// could run.
pub type JobOutput<T> = Result<T, String>;

/// Shared completion cell between one submitted job and its handle.
struct HandleCell<T> {
    slot: Mutex<Option<JobOutput<T>>>,
    ready: Condvar,
}

/// The caller's view of one submitted job: poll with
/// [`JobHandle::try_take`] / [`JobHandle::is_finished`], or block with
/// [`JobHandle::wait`]. Dropping the handle is fine — the job still runs;
/// nobody observes the result.
pub struct JobHandle<T> {
    cell: Arc<HandleCell<T>>,
}

impl<T> JobHandle<T> {
    /// `true` once the job has finished (or failed, or was refused).
    pub fn is_finished(&self) -> bool {
        self.cell.slot.lock().expect("handle poisoned").is_some()
    }

    /// Takes the output if the job has finished; `None` while in flight.
    /// The output can be taken exactly once.
    pub fn try_take(&self) -> Option<JobOutput<T>> {
        self.cell.slot.lock().expect("handle poisoned").take()
    }

    /// Blocks until the job finishes and returns its output.
    pub fn wait(self) -> JobOutput<T> {
        let mut slot = self.cell.slot.lock().expect("handle poisoned");
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = self.cell.ready.wait(slot).expect("handle poisoned");
        }
    }
}

/// What the service queue holds and guards.
struct ServiceQueueState {
    jobs: VecDeque<Box<dyn FnOnce() + Send>>,
    /// Once set, submissions are refused; workers drain the queue (every
    /// already-accepted job still runs) and then exit.
    draining: bool,
}

struct ServiceShared {
    state: Mutex<ServiceQueueState>,
    available: Condvar,
    /// Jobs whose closure actually started executing on a worker. The
    /// cache layer above asserts on this: a memoized request must *not*
    /// move it. When the pool has a registry this *is* the registry's
    /// `pool/executed` counter, so metric snapshots see it too.
    executed: Arc<AtomicU64>,
    /// Queue depth observed at each submit (after the push); `None` when
    /// the pool runs without a registry.
    queue_depth: Option<Arc<Histogram>>,
}

/// A persistent work pool for long-running services: `workers` threads
/// accept closures over time and run them to completion, isolating
/// panics per job. Unlike [`run_jobs`] — which seeds everything up front,
/// work-steals across deques and then *drains* — this pool lives until
/// [`ServicePool::shutdown`], so a daemon can keep queueing requests onto
/// the same threads for its whole lifetime. A single shared queue replaces
/// the stealing deques: submissions arrive one at a time, so there is no
/// seeded imbalance to steal against, and FIFO order keeps request latency
/// fair.
pub struct ServicePool {
    shared: Arc<ServiceShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ServicePool {
    /// A pool of `workers` threads (0 is treated as 1).
    pub fn new(workers: usize) -> Self {
        Self::with_registry(workers, None)
    }

    /// A pool whose queue depth and executed-job count land in `registry`
    /// as `pool/queue_depth` and `pool/executed`.
    pub fn with_registry(workers: usize, registry: Option<&Registry>) -> Self {
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceQueueState {
                jobs: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            executed: registry
                .map(|r| r.counter("pool/executed"))
                .unwrap_or_default(),
            queue_depth: registry.map(|r| r.histogram("pool/queue_depth")),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ServicePool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Jobs that have started executing on a worker (monotone; memoized
    /// requests served above the pool never appear here).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Submits a job. The returned handle resolves to the job's value, to
    /// the rendered panic payload if it crashed, or — when the pool is
    /// already draining — immediately to an error without running the job.
    pub fn submit<T, F>(&self, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let cell = Arc::new(HandleCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        let handle = JobHandle {
            cell: Arc::clone(&cell),
        };
        let shared = Arc::clone(&self.shared);
        let task: Box<dyn FnOnce() + Send> = Box::new(move || {
            shared.executed.fetch_add(1, Ordering::Relaxed);
            let out = catch_unwind(AssertUnwindSafe(job))
                .map_err(|payload| render_panic_payload(payload.as_ref()));
            *cell.slot.lock().expect("handle poisoned") = Some(out);
            cell.ready.notify_all();
        });
        let mut state = self.shared.state.lock().expect("service queue poisoned");
        if state.draining {
            drop(state);
            *handle.cell.slot.lock().expect("handle poisoned") =
                Some(Err("pool is shut down".to_owned()));
            handle.cell.ready.notify_all();
            return handle;
        }
        state.jobs.push_back(task);
        if let Some(h) = &self.shared.queue_depth {
            h.record(state.jobs.len() as u64);
        }
        drop(state);
        self.shared.available.notify_one();
        handle
    }

    /// Graceful drain: refuses new submissions, lets every accepted job
    /// run to completion, and joins the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("service queue poisoned");
            state.draining = true;
        }
        self.shared.available.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker handles poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &ServiceShared) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("service queue poisoned");
            loop {
                if let Some(task) = state.jobs.pop_front() {
                    break task;
                }
                if state.draining {
                    return;
                }
                state = shared
                    .available
                    .wait(state)
                    .expect("service queue poisoned");
            }
        };
        // The task body carries its own panic net (`submit` wraps the
        // closure), so nothing can unwind out of here.
        task();
    }
}

/// Renders a caught panic payload for a [`JobHandle`] error.
fn render_panic_payload(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked: non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_job_runs_exactly_once_in_index_order() {
        for workers in [1, 2, 4, 7] {
            let counter = AtomicUsize::new(0);
            let results = run_jobs(workers, 23, |_w, job| {
                counter.fetch_add(1, Ordering::Relaxed);
                job * 10
            });
            assert_eq!(counter.load(Ordering::Relaxed), 23, "workers={workers}");
            assert_eq!(
                results,
                (0..23).map(|j| j * 10).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn stealing_drains_uneven_loads() {
        // One giant job seeded on worker 0; the rest tiny. With stealing,
        // the tiny jobs all finish even though worker 0 is stuck.
        let results = run_jobs(4, 16, |_w, job| {
            if job == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            job
        });
        assert_eq!(results.len(), 16);
    }

    #[test]
    fn zero_workers_and_zero_jobs_are_fine() {
        assert!(run_jobs(0, 0, |_w, j| j).is_empty());
        assert_eq!(run_jobs(0, 3, |_w, j| j), vec![0, 1, 2]);
    }

    #[test]
    fn stats_observe_every_pop_without_changing_results() {
        // Every job is either popped from its owner's deque (one
        // queue-depth sample) or stolen (one steal tick) — the two tallies
        // partition the job count, and observation never reorders results.
        let registry = Registry::new();
        let stats = PoolStats::from_registry(&registry);
        let results = run_jobs_with_stats(4, 16, Some(&stats), |_w, job| {
            if job == 0 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            job
        });
        assert_eq!(results, (0..16).collect::<Vec<_>>());
        let steals = stats.steals.load(Ordering::Relaxed);
        let pops = stats.queue_depth.snapshot().count;
        assert_eq!(steals + pops, 16, "steals={steals} pops={pops}");
    }

    #[test]
    fn service_pool_runs_jobs_submitted_over_time() {
        let pool = ServicePool::new(3);
        let handles: Vec<JobHandle<usize>> = (0..20).map(|i| pool.submit(move || i * 7)).collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait(), Ok(i * 7));
        }
        assert_eq!(pool.executed(), 20);
        // A second wave on the same workers.
        let h = pool.submit(|| "again".to_owned());
        assert_eq!(h.wait(), Ok("again".to_owned()));
        assert_eq!(pool.executed(), 21);
    }

    #[test]
    fn service_pool_isolates_panics_per_handle() {
        let pool = ServicePool::new(2);
        let bad: JobHandle<u32> = pool.submit(|| panic!("service job exploded"));
        let good = pool.submit(|| 11u32);
        assert_eq!(good.wait(), Ok(11));
        let err = bad.wait().expect_err("panic resolves the handle to Err");
        assert!(err.contains("service job exploded"), "{err}");
        // The worker that caught the panic still serves new jobs.
        assert_eq!(pool.submit(|| 5u32).wait(), Ok(5));
    }

    #[test]
    fn service_pool_shutdown_drains_accepted_work_and_refuses_more() {
        let pool = ServicePool::new(2);
        let before: Vec<JobHandle<usize>> = (0..8).map(|i| pool.submit(move || i)).collect();
        pool.shutdown();
        // Every job accepted before the drain ran to completion.
        for (i, h) in before.into_iter().enumerate() {
            assert_eq!(h.wait(), Ok(i));
        }
        // Submissions after the drain resolve to an error without running.
        let refused = pool.submit(|| 99usize);
        assert_eq!(refused.wait(), Err("pool is shut down".to_owned()));
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn service_pool_wires_executed_and_queue_depth_into_the_registry() {
        let registry = Registry::new();
        let pool = ServicePool::with_registry(1, Some(&registry));
        let handles: Vec<JobHandle<u32>> = (0..5).map(|i| pool.submit(move || i)).collect();
        for h in handles {
            h.wait().unwrap();
        }
        let snap = registry.snapshot_json();
        assert_eq!(snap["counters"]["pool/executed"], 5u64);
        assert_eq!(snap["histograms"]["pool/queue_depth"]["count"], 5u64);
    }

    #[test]
    fn a_panicking_job_does_not_poison_its_siblings() {
        // Job 7 panics; every other job must still run exactly once, on
        // every pool size (including the single inline worker), and the
        // panic payload must resurface afterwards from the calling thread.
        for workers in [1, 4] {
            let ran = AtomicUsize::new(0);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_jobs(workers, 23, |_w, job| {
                    if job == 7 {
                        panic!("job 7 exploded");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                    job
                })
            }))
            .expect_err("the stashed panic re-raises after the drain");
            assert_eq!(
                ran.load(Ordering::Relaxed),
                22,
                "workers={workers}: all surviving jobs ran"
            );
            assert_eq!(
                caught.downcast_ref::<&str>().copied(),
                Some("job 7 exploded"),
                "workers={workers}: original payload preserved"
            );
        }
    }
}

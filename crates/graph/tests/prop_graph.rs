//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use selfstab_graph::{
    cycles::{has_cycle, simple_cycles, CycleBudget},
    hitting::minimal_hitting_sets,
    scc::{condensation, strongly_connected_components, vertices_on_cycles},
    BitSet, DiGraph,
};

fn arb_graph(max_n: usize, max_arcs: usize) -> impl Strategy<Value = DiGraph> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..=max_arcs).prop_map(move |arcs| {
            let mut g = DiGraph::new(n);
            for (u, v) in arcs {
                g.add_arc(u, v);
            }
            g
        })
    })
}

proptest! {
    /// Every vertex belongs to exactly one SCC, and components partition V.
    #[test]
    fn scc_is_a_partition(g in arb_graph(24, 80)) {
        let d = strongly_connected_components(&g);
        let mut seen = vec![false; g.vertex_count()];
        for (ci, comp) in d.components().iter().enumerate() {
            for &v in comp {
                prop_assert!(!seen[v], "vertex {v} in two components");
                seen[v] = true;
                prop_assert_eq!(d.component_of(v), ci);
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// The condensation is acyclic.
    #[test]
    fn condensation_acyclic(g in arb_graph(24, 80)) {
        let c = condensation(&g);
        prop_assert!(!has_cycle(&c.dag));
    }

    /// Tarjan emits components in reverse topological order.
    #[test]
    fn scc_reverse_topological(g in arb_graph(16, 60)) {
        let d = strongly_connected_components(&g);
        for (u, v) in g.arcs() {
            let cu = d.component_of(u);
            let cv = d.component_of(v);
            if cu != cv {
                // v's component must be emitted before u's.
                prop_assert!(cv < cu, "arc {u}->{v}: component order violated");
            }
        }
    }

    /// Every enumerated cycle is a real simple cycle of the graph, canonical.
    #[test]
    fn cycles_are_valid(g in arb_graph(10, 30)) {
        let e = simple_cycles(&g, CycleBudget { max_cycles: 50_000, ..CycleBudget::default() });
        for c in &e.cycles {
            prop_assert!(!c.is_empty());
            // arcs exist
            for i in 0..c.len() {
                let u = c[i];
                let v = c[(i + 1) % c.len()];
                prop_assert!(g.has_arc(u, v), "missing arc {u}->{v} in cycle {c:?}");
            }
            // simple
            let mut sorted = c.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), c.len(), "cycle not simple");
            // canonical: min vertex first
            prop_assert_eq!(*c.iter().min().unwrap(), c[0]);
        }
        // deduplicated
        let mut keys: Vec<Vec<usize>> = e.cycles.clone();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate cycles reported");
    }

    /// has_cycle agrees with the enumeration, and with vertices_on_cycles.
    #[test]
    fn cycle_detection_consistency(g in arb_graph(10, 30)) {
        let e = simple_cycles(&g, CycleBudget { max_cycles: 100_000, ..CycleBudget::default() });
        prop_assert!(!e.truncated);
        prop_assert_eq!(has_cycle(&g), !e.cycles.is_empty());
        let on = vertices_on_cycles(&g);
        let mut from_enum = BitSet::new(g.vertex_count());
        for c in &e.cycles {
            for &v in c {
                from_enum.insert(v);
            }
        }
        prop_assert_eq!(on.iter().collect::<Vec<_>>(), from_enum.iter().collect::<Vec<_>>());
    }

    /// Induced subgraph keeps exactly arcs inside the kept vertex set.
    #[test]
    fn induced_subgraph_correct(g in arb_graph(16, 60), seed in proptest::collection::vec(any::<bool>(), 16)) {
        let keep = BitSet::from_iter_with_capacity(
            g.vertex_count(),
            (0..g.vertex_count()).filter(|&v| seed[v % seed.len()]),
        );
        let sub = g.induced(&keep);
        for (u, v) in g.arcs() {
            prop_assert_eq!(sub.has_arc(u, v), keep.contains(u) && keep.contains(v));
        }
        for (u, v) in sub.arcs() {
            prop_assert!(g.has_arc(u, v));
        }
    }

    /// Minimal hitting sets: each hits every family, and none is a subset of
    /// another.
    #[test]
    fn hitting_sets_hit_and_are_minimal(
        fams in proptest::collection::vec(proptest::collection::vec(0usize..8, 1..4), 0..5)
    ) {
        let hs = minimal_hitting_sets(&fams, 1000, 10);
        for s in &hs {
            for f in &fams {
                prop_assert!(f.iter().any(|e| s.contains(e)), "{s:?} misses family {f:?}");
            }
        }
        for a in &hs {
            for b in &hs {
                if a != b {
                    prop_assert!(!a.iter().all(|e| b.contains(e)), "{a:?} subset of {b:?}");
                }
            }
        }
    }

    /// Reachability: reachable_from is closed under successors.
    #[test]
    fn reachability_closed(g in arb_graph(16, 60)) {
        let r = g.reachable_from(0);
        for u in r.iter() {
            for &v in g.successors(u) {
                prop_assert!(r.contains(v as usize));
            }
        }
    }
}

//! Enumeration of simple directed cycles (Johnson's algorithm) with budgets.
//!
//! Theorem 4.2 of the paper turns each directed cycle of the
//! deadlock-induced RCG through an illegitimate local state into a family of
//! global deadlocks (for every ring size that is a multiple of the cycle
//! length), so enumerating the actual cycles — not just detecting them —
//! yields precise counterexample ring sizes.

use crate::bitset::BitSet;
use crate::digraph::DiGraph;
use crate::scc::strongly_connected_components;

/// Budget limits for cycle enumeration.
///
/// Johnson's algorithm is output-sensitive but the number of simple cycles
/// can be exponential; both limits guard against pathological inputs. When a
/// limit is hit the enumeration stops early and marks the result truncated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleBudget {
    /// Maximum number of cycles to collect.
    pub max_cycles: usize,
    /// Maximum cycle length to report (longer cycles are skipped, not
    /// counted as truncation).
    pub max_len: usize,
    /// Maximum number of search steps before giving up.
    pub max_steps: usize,
}

impl Default for CycleBudget {
    fn default() -> Self {
        CycleBudget {
            max_cycles: 10_000,
            max_len: usize::MAX,
            max_steps: 5_000_000,
        }
    }
}

/// The outcome of a cycle enumeration.
#[derive(Clone, Debug, Default)]
pub struct CycleEnumeration {
    /// The simple cycles found. Each cycle is a vertex list
    /// `[v0, v1, ..., vk]` with arcs `v0->v1->...->vk->v0`; the smallest
    /// vertex id appears first, making cycles canonical and deduplicated.
    pub cycles: Vec<Vec<usize>>,
    /// `true` if a budget limit stopped the enumeration before completion.
    pub truncated: bool,
}

impl CycleEnumeration {
    /// Cycles that pass through at least one vertex of `set`.
    pub fn through<'a>(&'a self, set: &'a BitSet) -> impl Iterator<Item = &'a Vec<usize>> + 'a {
        self.cycles
            .iter()
            .filter(move |c| c.iter().any(|&v| set.contains(v)))
    }
}

struct Johnson<'g> {
    g: &'g DiGraph,
    blocked: Vec<bool>,
    block_map: Vec<Vec<usize>>,
    stack: Vec<usize>,
    start: usize,
    budget: CycleBudget,
    steps: usize,
    out: CycleEnumeration,
}

impl Johnson<'_> {
    fn unblock(&mut self, v: usize) {
        self.blocked[v] = false;
        let pending = std::mem::take(&mut self.block_map[v]);
        for w in pending {
            if self.blocked[w] {
                self.unblock(w);
            }
        }
    }

    /// Returns `true` if a cycle through `start` was found below `v`.
    fn circuit(&mut self, v: usize, scc_members: &BitSet) -> bool {
        if self.out.truncated {
            return false;
        }
        self.steps += 1;
        if self.steps > self.budget.max_steps || self.out.cycles.len() >= self.budget.max_cycles {
            self.out.truncated = true;
            return false;
        }
        let mut found = false;
        self.stack.push(v);
        self.blocked[v] = true;
        let succs: Vec<usize> = self
            .g
            .successors(v)
            .iter()
            .map(|&w| w as usize)
            .filter(|&w| w >= self.start && scc_members.contains(w))
            .collect();
        for w in succs {
            if w == self.start {
                // Length-1 cycles (self-loops) are handled by the pre-pass in
                // `simple_cycles`; recording them here would duplicate them.
                if self.stack.len() >= 2
                    && self.stack.len() <= self.budget.max_len
                    && self.out.cycles.len() < self.budget.max_cycles
                {
                    self.out.cycles.push(self.stack.clone());
                }
                found = true;
            } else if !self.blocked[w] && self.circuit(w, scc_members) {
                found = true;
            }
            if self.out.truncated {
                break;
            }
        }
        if found {
            self.unblock(v);
        } else {
            for &w in self.g.successors(v) {
                let w = w as usize;
                if w >= self.start && scc_members.contains(w) && !self.block_map[w].contains(&v) {
                    self.block_map[w].push(v);
                }
            }
        }
        self.stack.pop();
        found
    }
}

/// Enumerates the simple directed cycles of `g` within the given budget.
///
/// Self-loops are reported as length-1 cycles. Each cycle is canonical: it
/// starts at its smallest vertex, so no cycle is reported twice.
///
/// # Examples
///
/// ```
/// use selfstab_graph::{DiGraph, cycles::{simple_cycles, CycleBudget}};
///
/// // Two cycles sharing vertex 0: 0->1->0 and 0->2->3->0.
/// let g: DiGraph = [(0, 1), (1, 0), (0, 2), (2, 3), (3, 0)].into_iter().collect();
/// let e = simple_cycles(&g, CycleBudget::default());
/// assert!(!e.truncated);
/// let mut lens: Vec<usize> = e.cycles.iter().map(|c| c.len()).collect();
/// lens.sort_unstable();
/// assert_eq!(lens, vec![2, 3]);
/// ```
pub fn simple_cycles(g: &DiGraph, budget: CycleBudget) -> CycleEnumeration {
    let n = g.vertex_count();
    let mut j = Johnson {
        g,
        blocked: vec![false; n],
        block_map: vec![Vec::new(); n],
        stack: Vec::new(),
        start: 0,
        budget,
        steps: 0,
        out: CycleEnumeration::default(),
    };

    // Self-loops first (Johnson's formulation excludes them).
    for v in 0..n {
        if g.has_arc(v, v) {
            if j.out.cycles.len() >= budget.max_cycles {
                j.out.truncated = true;
                break;
            }
            if budget.max_len >= 1 {
                j.out.cycles.push(vec![v]);
            }
        }
    }

    for start in 0..n {
        if j.out.truncated {
            break;
        }
        // Work within the SCC (of the subgraph induced on vertices >= start)
        // containing `start`.
        let keep = BitSet::from_iter_with_capacity(n, start..n);
        let sub = g.induced(&keep);
        let sccs = strongly_connected_components(&sub);
        let comp = &sccs.components()[sccs.component_of(start)];
        if comp.len() < 2 {
            continue;
        }
        let members = BitSet::from_iter_with_capacity(n, comp.iter().copied());
        j.start = start;
        for v in 0..n {
            j.blocked[v] = false;
            j.block_map[v].clear();
        }
        j.circuit(start, &members);
    }
    j.out
}

/// Returns `true` if `g` has any directed cycle (self-loops count).
pub fn has_cycle(g: &DiGraph) -> bool {
    if (0..g.vertex_count()).any(|v| g.has_arc(v, v)) {
        return true;
    }
    let sccs = strongly_connected_components(g);
    sccs.components().iter().any(|c| c.len() > 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_plus_selfloop() {
        let g: DiGraph = [(0, 1), (1, 2), (2, 0), (1, 1)].into_iter().collect();
        let e = simple_cycles(&g, CycleBudget::default());
        assert!(!e.truncated);
        let mut lens: Vec<usize> = e.cycles.iter().map(|c| c.len()).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![1, 3]);
    }

    #[test]
    fn complete_graph_k4_has_20_cycles() {
        // K4 (directed both ways) has 6*2-cycles? Known count of simple
        // directed cycles in complete digraph on 4 vertices: C(4,2)=6 of
        // length 2, 4*2=8 of length 3, 3*2=6 of length 4 => 20.
        let mut g = DiGraph::new(4);
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    g.add_arc(u, v);
                }
            }
        }
        let e = simple_cycles(&g, CycleBudget::default());
        assert!(!e.truncated);
        assert_eq!(e.cycles.len(), 20);
    }

    #[test]
    fn cycles_are_canonical_and_unique() {
        let g: DiGraph = [(0, 1), (1, 2), (2, 0)].into_iter().collect();
        let e = simple_cycles(&g, CycleBudget::default());
        assert_eq!(e.cycles, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn budget_truncates() {
        let mut g = DiGraph::new(8);
        for u in 0..8 {
            for v in 0..8 {
                if u != v {
                    g.add_arc(u, v);
                }
            }
        }
        let e = simple_cycles(
            &g,
            CycleBudget {
                max_cycles: 5,
                ..CycleBudget::default()
            },
        );
        assert!(e.truncated);
        assert_eq!(e.cycles.len(), 5);
    }

    #[test]
    fn max_len_filters_but_does_not_truncate() {
        let g: DiGraph = [(0, 1), (1, 0), (0, 2), (2, 3), (3, 0)]
            .into_iter()
            .collect();
        let e = simple_cycles(
            &g,
            CycleBudget {
                max_len: 2,
                ..CycleBudget::default()
            },
        );
        assert!(!e.truncated);
        assert_eq!(e.cycles.len(), 1);
        assert_eq!(e.cycles[0].len(), 2);
    }

    #[test]
    fn dag_has_no_cycles() {
        let g: DiGraph = [(0, 1), (0, 2), (1, 3), (2, 3)].into_iter().collect();
        assert!(!has_cycle(&g));
        assert!(simple_cycles(&g, CycleBudget::default()).cycles.is_empty());
    }

    #[test]
    fn through_filter() {
        let g: DiGraph = [(0, 1), (1, 0), (2, 3), (3, 2)].into_iter().collect();
        let e = simple_cycles(&g, CycleBudget::default());
        let set = BitSet::from_iter_with_capacity(4, [2]);
        let hits: Vec<_> = e.through(&set).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], &vec![2, 3]);
    }
}

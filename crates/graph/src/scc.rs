//! Strongly-connected components (iterative Tarjan) and condensation.

use crate::bitset::BitSet;
use crate::digraph::DiGraph;

/// The result of an SCC decomposition.
///
/// Components are produced in reverse topological order of the condensation
/// (a Tarjan property): if component `a` can reach component `b` (`a != b`)
/// then `b` appears before `a` in [`SccDecomposition::components`].
#[derive(Clone, Debug)]
pub struct SccDecomposition {
    components: Vec<Vec<usize>>,
    component_of: Vec<usize>,
}

impl SccDecomposition {
    /// The components, each a list of vertices.
    pub fn components(&self) -> &[Vec<usize>] {
        &self.components
    }

    /// The component index of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn component_of(&self, v: usize) -> usize {
        self.component_of[v]
    }

    /// Returns `true` if `v` lies on some directed cycle of the graph this
    /// decomposition was computed for: its component has more than one vertex,
    /// or it carries a self-loop (the caller passes self-loop knowledge via
    /// `has_self_loop`).
    pub fn on_cycle(&self, v: usize, has_self_loop: bool) -> bool {
        self.components[self.component_of[v]].len() > 1 || has_self_loop
    }
}

/// Computes the strongly-connected components of `g` with an iterative
/// Tarjan algorithm (no recursion, safe for large state graphs).
///
/// # Examples
///
/// ```
/// use selfstab_graph::{DiGraph, scc::strongly_connected_components};
///
/// let g: DiGraph = [(0, 1), (1, 0), (1, 2)].into_iter().collect();
/// let d = strongly_connected_components(&g);
/// assert_eq!(d.components().len(), 2);
/// assert_eq!(d.component_of(0), d.component_of(1));
/// assert_ne!(d.component_of(0), d.component_of(2));
/// ```
pub fn strongly_connected_components(g: &DiGraph) -> SccDecomposition {
    let n = g.vertex_count();
    const UNVISITED: usize = usize::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut component_of = vec![UNVISITED; n];

    // Explicit DFS frames: (vertex, next-successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let succs = g.successors(v);
            if *pos < succs.len() {
                let w = succs[*pos] as usize;
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component_of[w] = components.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }

    SccDecomposition {
        components,
        component_of,
    }
}

/// The condensation of a graph: one vertex per SCC, with arcs between
/// distinct components that carry at least one original arc.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// The component DAG.
    pub dag: DiGraph,
    /// The underlying decomposition.
    pub sccs: SccDecomposition,
}

/// Computes the condensation DAG of `g`.
///
/// # Examples
///
/// ```
/// use selfstab_graph::{DiGraph, scc::condensation};
///
/// let g: DiGraph = [(0, 1), (1, 0), (1, 2)].into_iter().collect();
/// let c = condensation(&g);
/// assert_eq!(c.dag.vertex_count(), 2);
/// assert_eq!(c.dag.arc_count(), 1);
/// ```
pub fn condensation(g: &DiGraph) -> Condensation {
    let sccs = strongly_connected_components(g);
    let mut dag = DiGraph::new(sccs.components().len());
    for (u, v) in g.arcs() {
        let cu = sccs.component_of(u);
        let cv = sccs.component_of(v);
        if cu != cv {
            dag.add_arc(cu, cv);
        }
    }
    Condensation { dag, sccs }
}

/// Returns the set of vertices that lie on at least one directed cycle:
/// members of a multi-vertex SCC, or vertices with a self-loop.
///
/// This is the workhorse of the Theorem 4.2 deadlock-freedom check: a local
/// deadlock is part of a "bad" structure iff it lies on a cycle of the
/// deadlock-induced RCG.
///
/// # Examples
///
/// ```
/// use selfstab_graph::{DiGraph, scc::vertices_on_cycles};
///
/// let g: DiGraph = [(0, 1), (1, 0), (1, 2), (3, 3)].into_iter().collect();
/// let on = vertices_on_cycles(&g);
/// assert!(on.contains(0) && on.contains(1) && on.contains(3));
/// assert!(!on.contains(2));
/// ```
pub fn vertices_on_cycles(g: &DiGraph) -> BitSet {
    let sccs = strongly_connected_components(g);
    let mut out = BitSet::new(g.vertex_count());
    for v in 0..g.vertex_count() {
        if sccs.components()[sccs.component_of(v)].len() > 1 || g.has_arc(v, v) {
            out.insert(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_components_in_dag() {
        let g: DiGraph = [(0, 1), (1, 2), (2, 3)].into_iter().collect();
        let d = strongly_connected_components(&g);
        assert_eq!(d.components().len(), 4);
        assert!(vertices_on_cycles(&g).is_empty());
    }

    #[test]
    fn two_cycles_bridge() {
        // cycle {0,1}, cycle {2,3}, bridge 1->2
        let g: DiGraph = [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]
            .into_iter()
            .collect();
        let d = strongly_connected_components(&g);
        assert_eq!(d.components().len(), 2);
        let on = vertices_on_cycles(&g);
        assert_eq!(on.len(), 4);
        // reverse topological order: {2,3} is emitted before {0,1}
        assert_eq!(d.components()[0], vec![2, 3]);
        assert_eq!(d.components()[1], vec![0, 1]);
    }

    #[test]
    fn condensation_is_acyclic() {
        let g: DiGraph = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]
            .into_iter()
            .collect();
        let c = condensation(&g);
        assert_eq!(c.dag.vertex_count(), 3);
        assert!(vertices_on_cycles(&c.dag).is_empty());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g: DiGraph = [(0, 0), (0, 1)].into_iter().collect();
        let on = vertices_on_cycles(&g);
        assert!(on.contains(0));
        assert!(!on.contains(1));
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        let d = strongly_connected_components(&g);
        assert!(d.components().is_empty());
    }

    #[test]
    fn large_path_does_not_overflow_stack() {
        // 200k-vertex path: recursion would blow the stack; iteration must not.
        let n = 200_000;
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_arc(i, i + 1);
        }
        let d = strongly_connected_components(&g);
        assert_eq!(d.components().len(), n);
    }
}

//! Directed-graph substrate for the `selfstab` toolkit.
//!
//! This crate provides the graph machinery that the local-reasoning method of
//! Farahat & Ebnenasir (*Local Reasoning for Global Convergence of
//! Parameterized Rings*, ICDCS 2012) is built on:
//!
//! * [`DiGraph`] — a compact directed graph over integer vertices with
//!   adjacency lists, used for Right Continuation Graphs (RCGs), Local
//!   Transition Graphs (LTGs) and global transition systems.
//! * [`scc`] — iterative Tarjan strongly-connected components and graph
//!   condensation (used by the Theorem 4.2 deadlock-freedom check).
//! * [`cycles`] — Johnson-style enumeration of simple directed cycles with
//!   budget limits (used to produce deadlock witness cycles and the ring
//!   sizes they correspond to).
//! * [`hitting`] — enumeration of minimal hitting sets (used to compute the
//!   `Resolve` sets of the Section 6 synthesis methodology: minimal feedback
//!   subsets of the RCG restricted to illegitimate local deadlocks).
//! * [`bitset`] — a small fixed-capacity bit set used throughout the
//!   workspace for vertex and local-state sets.
//! * [`dot`] — Graphviz DOT export for reproducing the paper's figures.
//!
//! # Examples
//!
//! Detect that a 3-cycle is strongly connected and enumerate it:
//!
//! ```
//! use selfstab_graph::{DiGraph, scc, cycles};
//!
//! let mut g = DiGraph::new(3);
//! g.add_arc(0, 1);
//! g.add_arc(1, 2);
//! g.add_arc(2, 0);
//!
//! let comps = scc::strongly_connected_components(&g);
//! assert_eq!(comps.components().len(), 1);
//!
//! let cs = cycles::simple_cycles(&g, cycles::CycleBudget::default());
//! assert_eq!(cs.cycles.len(), 1);
//! assert_eq!(cs.cycles[0].len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod cycles;
pub mod digraph;
pub mod dot;
pub mod hitting;
pub mod scc;

pub use bitset::BitSet;
pub use cycles::{simple_cycles, CycleBudget, CycleEnumeration};
pub use digraph::DiGraph;
pub use scc::{condensation, strongly_connected_components, Condensation, SccDecomposition};

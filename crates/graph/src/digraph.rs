//! A compact directed graph over integer vertices.

use crate::bitset::BitSet;

/// A directed graph over vertices `0..n`, stored as forward adjacency lists.
///
/// Parallel arcs are collapsed (each `(u, v)` pair is stored at most once);
/// self-loops are allowed and significant — in a Right Continuation Graph a
/// self-loop on a local deadlock is a cycle of length 1 and witnesses global
/// deadlocks at every ring size.
///
/// # Examples
///
/// ```
/// use selfstab_graph::DiGraph;
///
/// let mut g = DiGraph::new(2);
/// assert!(g.add_arc(0, 1));
/// assert!(!g.add_arc(0, 1)); // duplicate collapsed
/// assert!(g.add_arc(1, 1));  // self-loop
/// assert_eq!(g.arc_count(), 2);
/// assert!(g.has_arc(1, 1));
/// assert_eq!(g.successors(0), &[1]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    adj: Vec<Vec<u32>>,
    arc_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` vertices and no arcs.
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
            arc_count: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Adds the arc `u -> v`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_arc(&mut self, u: usize, v: usize) -> bool {
        assert!(v < self.adj.len(), "target vertex {v} out of range");
        let list = &mut self.adj[u];
        let v32 = v as u32;
        match list.binary_search(&v32) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, v32);
                self.arc_count += 1;
                true
            }
        }
    }

    /// Returns `true` if the arc `u -> v` is present.
    pub fn has_arc(&self, u: usize, v: usize) -> bool {
        u < self.adj.len() && self.adj[u].binary_search(&(v as u32)).is_ok()
    }

    /// The successors of `u`, in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn successors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// Iterates over all arcs as `(source, target)` pairs.
    pub fn arcs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v as usize)))
    }

    /// Builds the reverse graph (every arc flipped).
    pub fn reversed(&self) -> DiGraph {
        let mut r = DiGraph::new(self.vertex_count());
        for (u, v) in self.arcs() {
            r.add_arc(v, u);
        }
        r
    }

    /// Builds the subgraph induced by `keep`: the vertex set is unchanged but
    /// only arcs whose both endpoints are in `keep` survive.
    ///
    /// This matches the paper's notion of the RCG "induced over local
    /// deadlocks" while keeping vertex identities stable, which keeps local
    /// state ids meaningful across analyses.
    ///
    /// # Panics
    ///
    /// Panics if `keep.capacity() != vertex_count()`.
    pub fn induced(&self, keep: &BitSet) -> DiGraph {
        assert_eq!(
            keep.capacity(),
            self.vertex_count(),
            "induced-subgraph vertex set capacity mismatch"
        );
        let mut g = DiGraph::new(self.vertex_count());
        for (u, v) in self.arcs() {
            if keep.contains(u) && keep.contains(v) {
                g.add_arc(u, v);
            }
        }
        g
    }

    /// The set of vertices reachable from `start` (including `start`).
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn reachable_from(&self, start: usize) -> BitSet {
        assert!(start < self.vertex_count(), "start vertex out of range");
        let mut seen = BitSet::new(self.vertex_count());
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(u) = stack.pop() {
            for &v in self.successors(u) {
                if seen.insert(v as usize) {
                    stack.push(v as usize);
                }
            }
        }
        seen
    }

    /// The set of vertices from which some vertex in `targets` is reachable.
    ///
    /// # Panics
    ///
    /// Panics if `targets.capacity() != vertex_count()`.
    pub fn co_reachable(&self, targets: &BitSet) -> BitSet {
        assert_eq!(
            targets.capacity(),
            self.vertex_count(),
            "co_reachable target set capacity mismatch"
        );
        let rev = self.reversed();
        let mut seen = BitSet::new(self.vertex_count());
        let mut stack: Vec<usize> = targets.iter().collect();
        for &t in &stack {
            seen.insert(t);
        }
        while let Some(u) = stack.pop() {
            for &v in rev.successors(u) {
                if seen.insert(v as usize) {
                    stack.push(v as usize);
                }
            }
        }
        seen
    }

    /// Vertices with at least one outgoing arc.
    pub fn vertices_with_out_arcs(&self) -> BitSet {
        let mut s = BitSet::new(self.vertex_count());
        for (u, list) in self.adj.iter().enumerate() {
            if !list.is_empty() {
                s.insert(u);
            }
        }
        s
    }
}

impl FromIterator<(usize, usize)> for DiGraph {
    /// Builds a graph just large enough to hold all mentioned vertices.
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> Self {
        let arcs: Vec<(usize, usize)> = iter.into_iter().collect();
        let n = arcs.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
        let mut g = DiGraph::new(n);
        for (u, v) in arcs {
            g.add_arc(u, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        [(0, 1), (1, 3), (0, 2), (2, 3)].into_iter().collect()
    }

    #[test]
    fn basic_construction() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.arc_count(), 4);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert_eq!(g.successors(0), &[1, 2]);
    }

    #[test]
    fn duplicates_collapse() {
        let mut g = DiGraph::new(2);
        assert!(g.add_arc(0, 1));
        assert!(!g.add_arc(0, 1));
        assert_eq!(g.arc_count(), 1);
    }

    #[test]
    fn reversed_roundtrip() {
        let g = diamond();
        let rr = g.reversed().reversed();
        assert_eq!(g, rr);
    }

    #[test]
    fn induced_subgraph_drops_crossing_arcs() {
        let g = diamond();
        let keep = BitSet::from_iter_with_capacity(4, [0, 1, 3]);
        let sub = g.induced(&keep);
        assert!(sub.has_arc(0, 1));
        assert!(sub.has_arc(1, 3));
        assert!(!sub.has_arc(0, 2));
        assert!(!sub.has_arc(2, 3));
        assert_eq!(sub.arc_count(), 2);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        let r = g.reachable_from(1);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 3]);
        let co = g.co_reachable(&BitSet::from_iter_with_capacity(4, [3]));
        assert_eq!(co.len(), 4);
    }

    #[test]
    fn self_loop_counts_as_arc() {
        let mut g = DiGraph::new(1);
        g.add_arc(0, 0);
        assert!(g.has_arc(0, 0));
        assert_eq!(g.arc_count(), 1);
    }

    #[test]
    fn arcs_iterator_matches() {
        let g = diamond();
        let mut arcs: Vec<_> = g.arcs().collect();
        arcs.sort_unstable();
        assert_eq!(arcs, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }
}

//! Graphviz DOT export, used to regenerate the paper's figures.

use std::fmt::Write as _;

use crate::digraph::DiGraph;

/// Style attributes for a DOT vertex.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VertexStyle {
    /// Node label; defaults to the vertex id when empty.
    pub label: String,
    /// Fill color name (Graphviz color), empty for none.
    pub fill: String,
    /// Shape name, empty for the Graphviz default.
    pub shape: String,
}

/// Renders `g` as a DOT digraph.
///
/// `vertex_style` is consulted per vertex; return `None` to omit a vertex
/// (isolated vertices are otherwise emitted so that figures show the whole
/// local state space). `arc_label` supplies an optional label per arc.
///
/// # Examples
///
/// ```
/// use selfstab_graph::{DiGraph, dot::{to_dot, VertexStyle}};
///
/// let g: DiGraph = [(0, 1)].into_iter().collect();
/// let dot = to_dot(&g, "demo", |v| Some(VertexStyle {
///     label: format!("s{v}"),
///     ..VertexStyle::default()
/// }), |_, _| None);
/// assert!(dot.contains("digraph \"demo\""));
/// assert!(dot.contains("v0 -> v1"));
/// ```
pub fn to_dot<FV, FA>(g: &DiGraph, name: &str, mut vertex_style: FV, mut arc_label: FA) -> String
where
    FV: FnMut(usize) -> Option<VertexStyle>,
    FA: FnMut(usize, usize) -> Option<String>,
{
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let mut present = vec![false; g.vertex_count()];
    #[allow(clippy::needless_range_loop)] // v indexes both the graph and `present`
    for v in 0..g.vertex_count() {
        if let Some(style) = vertex_style(v) {
            present[v] = true;
            let label = if style.label.is_empty() {
                v.to_string()
            } else {
                style.label
            };
            let mut attrs = format!("label=\"{}\"", escape(&label));
            if !style.fill.is_empty() {
                let _ = write!(
                    attrs,
                    ", style=filled, fillcolor=\"{}\"",
                    escape(&style.fill)
                );
            }
            if !style.shape.is_empty() {
                let _ = write!(attrs, ", shape={}", style.shape);
            }
            let _ = writeln!(out, "  v{v} [{attrs}];");
        }
    }
    for (u, v) in g.arcs() {
        if !present[u] || !present[v] {
            continue;
        }
        match arc_label(u, v) {
            Some(l) => {
                let _ = writeln!(out, "  v{u} -> v{v} [label=\"{}\"];", escape(&l));
            }
            None => {
                let _ = writeln!(out, "  v{u} -> v{v};");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_arcs() {
        let g: DiGraph = [(0, 1), (1, 1)].into_iter().collect();
        let dot = to_dot(
            &g,
            "t",
            |v| {
                Some(VertexStyle {
                    label: format!("n{v}"),
                    fill: if v == 0 {
                        "lightgray".into()
                    } else {
                        String::new()
                    },
                    shape: String::new(),
                })
            },
            |u, v| Some(format!("{u}->{v}")),
        );
        assert!(dot.contains("v0 [label=\"n0\", style=filled, fillcolor=\"lightgray\"];"));
        assert!(dot.contains("v1 -> v1 [label=\"1->1\"];"));
    }

    #[test]
    fn omitted_vertices_drop_their_arcs() {
        let g: DiGraph = [(0, 1), (1, 2)].into_iter().collect();
        let dot = to_dot(
            &g,
            "t",
            |v| (v != 1).then(VertexStyle::default),
            |_, _| None,
        );
        assert!(!dot.contains("v0 -> v1"));
        assert!(!dot.contains("v1 -> v2"));
        assert!(dot.contains("v0 "));
        assert!(dot.contains("v2 "));
    }

    #[test]
    fn labels_are_escaped() {
        let g: DiGraph = [(0, 0)].into_iter().collect();
        let dot = to_dot(
            &g,
            "quote\"name",
            |_| {
                Some(VertexStyle {
                    label: "a\"b".into(),
                    ..VertexStyle::default()
                })
            },
            |_, _| None,
        );
        assert!(dot.contains("digraph \"quote\\\"name\""));
        assert!(dot.contains("label=\"a\\\"b\""));
    }
}

//! A compact fixed-capacity bit set over `usize` indices.
//!
//! Used across the workspace to represent sets of graph vertices and sets of
//! local states. The capacity is fixed at construction; all indices passed to
//! the set must be below the capacity.

/// A fixed-capacity set of small integers backed by 64-bit words.
///
/// # Examples
///
/// ```
/// use selfstab_graph::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set that can hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Creates a set from an iterator of indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= capacity`.
    pub fn from_iter_with_capacity<I: IntoIterator<Item = usize>>(
        capacity: usize,
        iter: I,
    ) -> Self {
        let mut s = BitSet::new(capacity);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The fixed capacity (exclusive upper bound on member indices).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index` into the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "BitSet index {index} out of capacity {}",
            self.capacity
        );
        let w = index / 64;
        let b = 1u64 << (index % 64);
        let had = self.words[w] & b != 0;
        self.words[w] |= b;
        !had
    }

    /// Removes `index` from the set. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "BitSet index {index} out of capacity {}",
            self.capacity
        );
        let w = index / 64;
        let b = 1u64 << (index % 64);
        let had = self.words[w] & b != 0;
        self.words[w] &= !b;
        had
    }

    /// Returns `true` if `index` is in the set.
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: removes every element of `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Complement within `0..capacity`, in place.
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Returns `true` if `self` and `other` share no element.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the members of a [`BitSet`], in increasing order.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_and_complement() {
        let mut s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        s.complement();
        assert!(s.is_empty());
        s.complement();
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter_with_capacity(10, [1, 3, 5]);
        let b = BitSet::from_iter_with_capacity(10, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 5]);
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_disjoint(&b));
        assert!(d.is_disjoint(&b));
    }

    #[test]
    fn iter_empty_and_boundaries() {
        let s = BitSet::new(0);
        assert_eq!(s.iter().count(), 0);
        let s = BitSet::from_iter_with_capacity(64, [63]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63]);
        let s = BitSet::from_iter_with_capacity(65, [64]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![64]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn contains_beyond_capacity_is_false() {
        let s = BitSet::full(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }
}

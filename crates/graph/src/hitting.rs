//! Enumeration of minimal hitting sets.
//!
//! The Section 6 synthesis methodology computes the `Resolve` set as a
//! *minimal feedback subset* of the deadlock-induced RCG restricted to
//! illegitimate local states: a minimal set of vertices hitting every "bad"
//! cycle. We reduce feedback-subset enumeration to minimal-hitting-set
//! enumeration over the enumerated cycles (restricted to the allowed
//! vertices of each cycle).

use std::collections::BTreeSet;

/// Enumerates all *minimal* hitting sets of `families`, where each family is
/// the set of elements allowed to hit it.
///
/// A hitting set picks at least one element from every family; it is minimal
/// if no proper subset is also a hitting set. Families are given as sorted
/// element lists. Returns hitting sets as sorted element lists, deduplicated,
/// ordered by (size, lexicographic).
///
/// `max_sets` bounds the number of returned sets (the search stops early once
/// reached); `max_size` bounds the size of any returned set.
///
/// # Examples
///
/// ```
/// use selfstab_graph::hitting::minimal_hitting_sets;
///
/// // Families {1,2} and {2,3}: minimal hitting sets are {2} and {1,3}.
/// let fams = vec![vec![1, 2], vec![2, 3]];
/// let hs = minimal_hitting_sets(&fams, 10, 10);
/// assert_eq!(hs, vec![vec![2], vec![1, 3]]);
/// ```
///
/// An empty family can never be hit, so the result is empty:
///
/// ```
/// use selfstab_graph::hitting::minimal_hitting_sets;
/// assert!(minimal_hitting_sets(&[vec![]], 10, 10).is_empty());
/// ```
pub fn minimal_hitting_sets(
    families: &[Vec<usize>],
    max_sets: usize,
    max_size: usize,
) -> Vec<Vec<usize>> {
    if families.iter().any(|f| f.is_empty()) {
        return Vec::new();
    }
    if families.is_empty() {
        return vec![Vec::new()];
    }

    // Branch-and-bound: repeatedly pick the first un-hit family and branch on
    // its elements. Collect candidate hitting sets, then filter to minimal.
    let mut found: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut current: Vec<usize> = Vec::new();

    fn first_unhit(families: &[Vec<usize>], current: &[usize]) -> Option<usize> {
        families
            .iter()
            .position(|f| !f.iter().any(|e| current.contains(e)))
    }

    fn search(
        families: &[Vec<usize>],
        current: &mut Vec<usize>,
        found: &mut BTreeSet<Vec<usize>>,
        max_sets: usize,
        max_size: usize,
    ) {
        if found.len() >= max_sets {
            return;
        }
        match first_unhit(families, current) {
            None => {
                let mut set = current.clone();
                set.sort_unstable();
                set.dedup();
                found.insert(set);
            }
            Some(idx) => {
                if current.len() >= max_size {
                    return;
                }
                for &e in &families[idx] {
                    // Avoid re-adding an element already chosen (it would not
                    // have left this family un-hit anyway).
                    current.push(e);
                    search(families, current, found, max_sets, max_size);
                    current.pop();
                    if found.len() >= max_sets {
                        return;
                    }
                }
            }
        }
    }

    search(families, &mut current, &mut found, max_sets, max_size);

    // Keep only minimal sets.
    let all: Vec<Vec<usize>> = found.into_iter().collect();
    let mut minimal: Vec<Vec<usize>> = all
        .iter()
        .filter(|s| {
            !all.iter()
                .any(|t| t.len() < s.len() && t.iter().all(|e| s.contains(e)))
        })
        .cloned()
        .collect();
    minimal.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    minimal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_families_hit_by_empty_set() {
        assert_eq!(minimal_hitting_sets(&[], 10, 10), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn single_family_each_singleton() {
        let hs = minimal_hitting_sets(&[vec![1, 2, 3]], 10, 10);
        assert_eq!(hs, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn shared_element_dominates() {
        let fams = vec![vec![0, 1], vec![0, 2], vec![0, 3]];
        let hs = minimal_hitting_sets(&fams, 100, 10);
        assert!(hs.contains(&vec![0]));
        assert!(hs.contains(&vec![1, 2, 3]));
        // {0,1} is not minimal.
        assert!(!hs.iter().any(|s| s == &vec![0, 1]));
    }

    #[test]
    fn disjoint_families_need_one_each() {
        let fams = vec![vec![1], vec![2], vec![3]];
        let hs = minimal_hitting_sets(&fams, 10, 10);
        assert_eq!(hs, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn max_size_prunes() {
        let fams = vec![vec![1], vec![2], vec![3]];
        let hs = minimal_hitting_sets(&fams, 10, 2);
        assert!(hs.is_empty());
    }

    #[test]
    fn duplicate_elements_within_branching_dedup() {
        let fams = vec![vec![1, 2], vec![1, 2]];
        let hs = minimal_hitting_sets(&fams, 10, 10);
        assert_eq!(hs, vec![vec![1], vec![2]]);
    }

    #[test]
    fn max_sets_truncates() {
        let fams = vec![vec![1, 2, 3, 4, 5]];
        let hs = minimal_hitting_sets(&fams, 2, 10);
        assert_eq!(hs.len(), 2);
    }
}

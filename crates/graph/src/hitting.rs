//! Enumeration of minimal hitting sets.
//!
//! The Section 6 synthesis methodology computes the `Resolve` set as a
//! *minimal feedback subset* of the deadlock-induced RCG restricted to
//! illegitimate local states: a minimal set of vertices hitting every "bad"
//! cycle. We reduce feedback-subset enumeration to minimal-hitting-set
//! enumeration over the enumerated cycles (restricted to the allowed
//! vertices of each cycle).
//!
//! Enumeration is *iterative deepening on set size*: all minimal sets of
//! size `k` are produced (in lexicographic order) before any set of size
//! `k + 1` is considered. A set emitted at level `k` can therefore never be
//! a superset of a set the search has yet to find — so truncation via
//! `max_sets` is sound: every returned set is genuinely minimal, not merely
//! minimal among the sets the truncated search happened to visit.

use std::collections::BTreeSet;

/// Enumerates all *minimal* hitting sets of `families`, where each family is
/// the set of elements allowed to hit it.
///
/// A hitting set picks at least one element from every family; it is minimal
/// if no proper subset is also a hitting set. Families are given as sorted
/// element lists. Returns hitting sets as sorted element lists, deduplicated,
/// ordered by (size, lexicographic).
///
/// `max_sets` bounds the number of returned sets; `max_size` bounds the size
/// of any returned set. Because enumeration proceeds in (size, lex) order,
/// truncation keeps a *prefix* of the full answer — every returned set is
/// minimal with respect to the complete family, even when the search stops
/// early.
///
/// # Examples
///
/// ```
/// use selfstab_graph::hitting::minimal_hitting_sets;
///
/// // Families {1,2} and {2,3}: minimal hitting sets are {2} and {1,3}.
/// let fams = vec![vec![1, 2], vec![2, 3]];
/// let hs = minimal_hitting_sets(&fams, 10, 10);
/// assert_eq!(hs, vec![vec![2], vec![1, 3]]);
/// ```
///
/// An empty family can never be hit, so the result is empty:
///
/// ```
/// use selfstab_graph::hitting::minimal_hitting_sets;
/// assert!(minimal_hitting_sets(&[vec![]], 10, 10).is_empty());
/// ```
pub fn minimal_hitting_sets(
    families: &[Vec<usize>],
    max_sets: usize,
    max_size: usize,
) -> Vec<Vec<usize>> {
    if families.iter().any(|f| f.is_empty()) {
        return Vec::new();
    }
    if families.is_empty() {
        return vec![Vec::new()];
    }
    if max_sets == 0 {
        return Vec::new();
    }

    // Iterative deepening: level `k` enumerates exactly the minimal hitting
    // sets of size `k`. A branch whose partial set already covers a
    // previously found minimal set can only complete to a superset, so it is
    // pruned; a branch that hits every family *before* reaching size `k` was
    // already found at a shallower level, so it is not re-emitted.
    let mut minimal: Vec<Vec<usize>> = Vec::new();
    let depth_cap = max_size.min(families.len());
    for k in 1..=depth_cap {
        if minimal.len() >= max_sets {
            break;
        }
        let mut level: BTreeSet<Vec<usize>> = BTreeSet::new();
        let mut current: Vec<usize> = Vec::new();
        search_level(families, &mut current, k, &minimal, &mut level);
        for set in level {
            if minimal.len() >= max_sets {
                break;
            }
            // Two distinct sets of equal size cannot contain one another, so
            // a level is internally superset-free; crossing levels is handled
            // by the pruning inside `search_level`.
            minimal.push(set);
        }
    }
    minimal
}

/// Depth-limited branch on the first un-hit family: records every hitting
/// set of size exactly `k` that is not a superset of an already-found
/// minimal set.
fn search_level(
    families: &[Vec<usize>],
    current: &mut Vec<usize>,
    k: usize,
    minimal: &[Vec<usize>],
    level: &mut BTreeSet<Vec<usize>>,
) {
    if covers_some(minimal, current) {
        return; // any completion is a superset of a known minimal set
    }
    let unhit = families
        .iter()
        .position(|f| !f.iter().any(|e| current.contains(e)));
    match unhit {
        None => {
            // Hit everything with fewer than `k` picks: this set belongs to
            // an earlier level (where it was emitted or pruned) — skip.
            if current.len() == k {
                let mut set = current.clone();
                set.sort_unstable();
                level.insert(set);
            }
        }
        Some(idx) => {
            if current.len() >= k {
                return; // size budget exhausted with families still un-hit
            }
            // Elements of an un-hit family are never already in `current`
            // (otherwise the family would be hit), so no dedup is needed.
            for &e in &families[idx] {
                current.push(e);
                search_level(families, current, k, minimal, level);
                current.pop();
            }
        }
    }
}

/// Whether `current` is a (non-strict) superset of some already-found
/// minimal set.
fn covers_some(minimal: &[Vec<usize>], current: &[usize]) -> bool {
    minimal
        .iter()
        .any(|m| m.iter().all(|e| current.contains(e)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_families_hit_by_empty_set() {
        assert_eq!(minimal_hitting_sets(&[], 10, 10), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn single_family_each_singleton() {
        let hs = minimal_hitting_sets(&[vec![1, 2, 3]], 10, 10);
        assert_eq!(hs, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn shared_element_dominates() {
        let fams = vec![vec![0, 1], vec![0, 2], vec![0, 3]];
        let hs = minimal_hitting_sets(&fams, 100, 10);
        assert!(hs.contains(&vec![0]));
        assert!(hs.contains(&vec![1, 2, 3]));
        // {0,1} is not minimal.
        assert!(!hs.iter().any(|s| s == &vec![0, 1]));
    }

    #[test]
    fn disjoint_families_need_one_each() {
        let fams = vec![vec![1], vec![2], vec![3]];
        let hs = minimal_hitting_sets(&fams, 10, 10);
        assert_eq!(hs, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn max_size_prunes() {
        let fams = vec![vec![1], vec![2], vec![3]];
        let hs = minimal_hitting_sets(&fams, 10, 2);
        assert!(hs.is_empty());
    }

    #[test]
    fn duplicate_elements_within_branching_dedup() {
        let fams = vec![vec![1, 2], vec![1, 2]];
        let hs = minimal_hitting_sets(&fams, 10, 10);
        assert_eq!(hs, vec![vec![1], vec![2]]);
    }

    #[test]
    fn max_sets_truncates() {
        let fams = vec![vec![1, 2, 3, 4, 5]];
        let hs = minimal_hitting_sets(&fams, 2, 10);
        assert_eq!(hs, vec![vec![1], vec![2]]);
    }

    /// Regression for the truncation-soundness bug: with families
    /// {1,2} and {2,3}, branching on the first family explores the partial
    /// set {1} before {2}, and the completed set {1,2} (hit the second
    /// family via 2) before the singleton {2}. The old search stopped at
    /// `max_sets = 1` *before* the minimality filter ran, returning the
    /// non-minimal {1,2}. Size-ordered enumeration must return {2}.
    #[test]
    fn truncation_never_returns_a_superset_of_an_unfound_minimal_set() {
        let fams = vec![vec![1, 2], vec![2, 3]];
        assert_eq!(minimal_hitting_sets(&fams, 1, 10), vec![vec![2]]);
    }

    /// Truncated answers are prefixes of the full (size, lex) enumeration.
    #[test]
    fn truncated_result_is_a_prefix_of_the_full_enumeration() {
        let fams = vec![vec![0, 1], vec![0, 2], vec![1, 3], vec![2, 3]];
        let full = minimal_hitting_sets(&fams, usize::MAX, 10);
        for n in 0..=full.len() {
            assert_eq!(minimal_hitting_sets(&fams, n, 10), full[..n]);
        }
    }

    /// The output respects (size, lexicographic) order globally.
    #[test]
    fn output_is_size_then_lex_ordered() {
        let fams = vec![vec![0, 1, 4], vec![1, 2], vec![2, 3, 4]];
        let hs = minimal_hitting_sets(&fams, usize::MAX, 10);
        for w in hs.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert!(a.len() < b.len() || (a.len() == b.len() && a < b));
        }
    }

    #[test]
    fn max_sets_zero_returns_nothing() {
        assert!(minimal_hitting_sets(&[vec![1]], 0, 10).is_empty());
    }
}

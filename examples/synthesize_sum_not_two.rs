//! Reproduces the Section 6 synthesis walk-through on the sum-not-two
//! protocol (Figure 12): computes the forced `Resolve` set, screens all
//! eight candidate transition sets through the pseudo-livelock and
//! contiguous-trail conditions, and cross-checks every verdict against the
//! global model checker.
//!
//! Run with: `cargo run --example synthesize_sum_not_two`

use selfstab::core::livelock::LivelockAnalysis;
use selfstab::global::{check, RingInstance};
use selfstab::protocols::sum_not_two;
use selfstab::synth::{LocalSynthesizer, SynthesisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = sum_not_two::sum_not_two_empty();
    println!("{input}");

    let out = LocalSynthesizer::new(SynthesisConfig::default())
        .synthesize(&input)
        .unwrap();
    println!(
        "synthesis: {} resolve set(s), {} combinations, {} rejected by trail, {} solutions\n",
        out.resolve_sets_tried(),
        out.combinations_tried(),
        out.rejected_by_trail(),
        out.solutions().len()
    );

    for s in out.solutions() {
        let names: Vec<String> = s
            .added
            .iter()
            .map(|t| t.display(input.space(), input.locality(), input.domain()))
            .collect();
        println!("ACCEPTED ({:?}):", s.verdict);
        for n in names {
            println!("    {n}");
        }
        // Every accepted revision must hold up globally.
        for k in 2..=7 {
            let ring = RingInstance::symmetric(&s.protocol, k)?;
            let rep = check::ConvergenceReport::check(&ring);
            assert!(rep.self_stabilizing(), "K={k}: {rep}");
        }
        println!("    globally verified for K = 2..=7\n");
    }

    // The rejected candidates, with their trail witnesses.
    println!("--- rejected candidates ---");
    for (label, cand) in [
        (
            "{t21, t10, t02}",
            sum_not_two::sum_not_two_candidate(1, 0, 2)?,
        ),
        (
            "{t01, t12, t20}",
            sum_not_two::sum_not_two_candidate(0, 2, 1)?,
        ),
        (
            "{t20, t10, t02}",
            sum_not_two::sum_not_two_candidate(0, 0, 2)?,
        ),
        (
            "{t20, t12, t02}",
            sum_not_two::sum_not_two_candidate(0, 2, 2)?,
        ),
    ] {
        let la = LivelockAnalysis::analyze(&cand);
        println!("{label}: certified_free = {}", la.certified_free());
        if let Some(trail) = la.trail() {
            println!("    blocking trail: {}", trail.display(&cand));
        }
        let mut real = None;
        for k in 2..=7 {
            let ring = RingInstance::symmetric(&cand, k)?;
            if check::find_livelock(&ring).is_some() {
                real = Some(k);
                break;
            }
        }
        match real {
            Some(k) => println!("    REAL livelock at K = {k} (the paper misses the last two!)"),
            None => {
                println!("    no real livelock up to K = 7 (sufficiency gap, as the paper notes)")
            }
        }
    }

    // The paper's final guarded-command solution.
    let sol = sum_not_two::sum_not_two_solution();
    println!("\nthe paper's solution:\n{sol}");
    Ok(())
}

//! Livelock forensics on binary agreement (Example 5.2, Figures 5–6):
//! finds the K = 4 livelock of the two-sided agreement protocol, converts
//! it to a schedule, enumerates its precedence-preserving permutations
//! (Lemma 5.11), and shows the contiguous trail the livelock leaves in the
//! LTG (Lemma 5.12 / Theorem 5.14).
//!
//! Run with: `cargo run --example livelock_forensics`

use selfstab::core::livelock::LivelockAnalysis;
use selfstab::global::{
    check,
    schedule::{dependent_pairs, equivalent_schedules, Schedule},
    RingInstance,
};
use selfstab::protocols::agreement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = agreement::binary_agreement_both();
    println!("{p}");

    // The local certificate refuses this protocol — and shows why.
    let la = LivelockAnalysis::analyze(&p);
    println!("certified livelock-free: {}", la.certified_free());
    if let Some(trail) = la.trail() {
        println!("blocking contiguous trail: {}", trail.display(&p));
    }

    // Ground truth: the paper's K = 4 livelock.
    let ring = RingInstance::symmetric(&p, 4)?;
    let cycle: Vec<_> = [
        [1, 0, 0, 0],
        [1, 1, 0, 0],
        [0, 1, 0, 0],
        [0, 1, 1, 0],
        [0, 1, 1, 1],
        [0, 0, 1, 1],
        [1, 0, 1, 1],
        [1, 0, 0, 1],
    ]
    .iter()
    .map(|w| ring.space().encode(w))
    .collect();
    println!("\nExample 5.2 livelock (K = 4):");
    for &s in &cycle {
        let cfg = ring.space().decode(s);
        println!(
            "  {}  (enabled processes: {})",
            cfg.iter().map(u8::to_string).collect::<String>(),
            ring.enabled_process_count(s)
        );
    }

    let sch = Schedule::from_cycle(&ring, &cycle);
    assert!(sch.is_cyclic(&ring));
    println!(
        "\nschedule: {:?}",
        sch.moves
            .iter()
            .map(|m| (m.process, m.target))
            .collect::<Vec<_>>()
    );
    let deps = dependent_pairs(&ring, &sch);
    println!(
        "dependent move pairs (Fig. 5): {} of {}",
        deps.len(),
        8 * 7 / 2
    );

    let class = equivalent_schedules(&ring, &sch, 1000);
    println!(
        "precedence-preserving permutations (Lemma 5.11): {}",
        class.len()
    );
    for (i, s) in class.iter().enumerate() {
        assert!(
            s.is_cyclic(&ring),
            "permutation {i} must replay as a livelock"
        );
    }
    println!("all {} permutations replay as livelocks ✓", class.len());

    // Enablement conservation along the livelock (Lemma 5.5).
    let e = check::livelock_enablement_count(&ring, &cycle).expect("Lemma 5.5");
    println!("constant enablement count |E| = {e}");
    Ok(())
}

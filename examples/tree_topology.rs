//! The oriented-tree extension (the paper's future work #1): the
//! continuation relation runs parent → child, and deadlock-freedom for
//! *every rooted tree at once* becomes a reachability question instead of
//! the ring theorem's cycle question.
//!
//! Run with: `cargo run --example tree_topology`

use selfstab::protocol::Domain;
use selfstab::tree::{parent_arrays, TreeDeadlockAnalysis, TreeInstance, TreeProtocol, TreeShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tree agreement: every node copies its parent; the root is silent.
    let agreement = TreeProtocol::builder(Domain::numeric("x", 3))
        .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")?
        .node_legit("x[r] == x[r-1]")?
        .root_silent_and_all_legit()
        .build()?;
    let a = TreeDeadlockAnalysis::analyze(&agreement);
    println!(
        "tree agreement: deadlock-free outside I for EVERY rooted tree: {}",
        a.is_free_for_all_trees()
    );

    // Cross-check by brute force over every tree of up to 5 nodes.
    let mut shapes = 0;
    for n in 1..=5 {
        for shape in parent_arrays(n) {
            shapes += 1;
            let inst = TreeInstance::new(&agreement, &shape);
            assert!(inst.illegitimate_deadlocks().is_empty());
        }
    }
    println!("verified by brute force over {shapes} tree shapes (≤ 5 nodes)");

    // A broken variant: the root must hold a value it can never reach.
    let broken = TreeProtocol::builder(Domain::numeric("x", 3))
        .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")?
        .node_legit("x[r] == x[r-1]")?
        .root_legit_values([2])
        .build()?;
    let a = TreeDeadlockAnalysis::analyze(&broken);
    let w = a
        .witness()
        .expect("the silent root deadlocks illegitimately");
    println!(
        "\nbroken variant: witness tree of {} node(s) with valuation {:?}",
        w.len(),
        w.path_values
    );

    // Repair: let the root climb toward 2. The analysis accepts again.
    let repaired = TreeProtocol::builder(Domain::numeric("x", 3))
        .node_action("x[r-1] != x[r] -> x[r] := x[r-1]")?
        .node_legit("x[r] == x[r-1]")?
        .root_transition(0, 2)?
        .root_transition(1, 2)?
        .root_legit_values([2])
        .build()?;
    let a = TreeDeadlockAnalysis::analyze(&repaired);
    println!(
        "after giving the root recovery transitions: free for all trees = {}",
        a.is_free_for_all_trees()
    );

    // The witness machinery on a protocol with a long path witness.
    let empty = TreeProtocol::builder(Domain::numeric("x", 2))
        .node_legit("x[r] == x[r-1]")?
        .root_silent_and_all_legit()
        .build()?;
    let a = TreeDeadlockAnalysis::analyze(&empty);
    let w = a.witness().expect("empty protocols deadlock everywhere");
    let shape = TreeShape::path(w.len());
    let inst = TreeInstance::new(&empty, &shape);
    println!(
        "\nempty protocol witness path {:?}: deadlock={} legit={}",
        w.path_values,
        inst.is_deadlock(&w.path_values),
        inst.is_legit(&w.path_values)
    );
    Ok(())
}

//! Dijkstra's K-state token ring (the paper's §5 remark): convergence
//! *despite corrupting actions*, checked globally (the one-token predicate
//! is not locally conjunctive) and demonstrated under fault injection.
//!
//! Run with: `cargo run --example token_ring`

use selfstab::global::{check, RingInstance, Scheduler, Simulator};
use selfstab::protocols::dijkstra;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (k, m) = (5usize, 5usize);
    let processes = dijkstra::dijkstra_processes(k, m);
    println!("Dijkstra's token ring: K = {k} processes, {m}-valued counters");
    println!("P_0 (bottom): {}", processes[0]);
    println!("P_i (others): {}", processes[1]);

    let refs: Vec<&selfstab::protocol::Protocol> = processes.iter().collect();
    let ring = RingInstance::heterogeneous(&refs, 1 << 24)?;
    let one_token =
        |s: selfstab::global::GlobalStateId| dijkstra::token_count(&ring.space().decode(s)) == 1;

    // Full global verification against the one-token predicate.
    assert!(check::illegitimate_deadlocks_where(&ring, one_token).is_empty());
    assert!(check::find_livelock_where(&ring, one_token).is_none());
    assert!(check::closure_violations_where(&ring, one_token).is_empty());
    println!("\nglobal check at K={k}: no deadlocks, no livelocks, one-token set closed ✓");
    println!("(note: the bottom's increment action corrupts its successor —");
    println!(" non-corruption is NOT necessary for livelock-freedom, as §5 argues)");

    // Simulate token circulation with periodic transient faults.
    let mut sim = Simulator::new(&ring, 7).with_scheduler(Scheduler::Random);
    let mut state = ring.space().encode(&vec![0; k]);
    for round in 1..=5 {
        state = sim.perturb(state, k / 2 + 1);
        let tokens_before = dijkstra::token_count(&ring.space().decode(state));
        let mut steps = 0;
        while dijkstra::token_count(&ring.space().decode(state)) != 1 {
            let moves = ring.moves_from(state);
            let m = moves[steps % moves.len()];
            state = ring.apply(state, m);
            steps += 1;
            assert!(steps < 100_000, "failed to converge");
        }
        println!(
            "round {round}: fault left {tokens_before} tokens, reconverged to 1 token in {steps} steps"
        );
    }
    Ok(())
}

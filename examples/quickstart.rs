//! Quickstart: define a protocol in the guarded-command DSL, prove it
//! self-stabilizing for *every* ring size with the local method, then watch
//! it converge in simulation.
//!
//! Run with: `cargo run --example quickstart`

use selfstab::core::StabilizationReport;
use selfstab::global::{RingInstance, Scheduler, Simulator};
use selfstab::protocol::{Domain, Locality, Protocol};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Binary agreement on a unidirectional ring: each process copies its
    // predecessor when they disagree (one direction only!).
    let protocol = Protocol::builder(
        "binary-agreement",
        Domain::numeric("x", 2),
        Locality::unidirectional(),
    )
    .action("x[r-1] == 1 && x[r] == 0 -> x[r] := 1")?
    .legit("x[r] == x[r-1]")?
    .build()?;

    println!("{protocol}");

    // The local analysis: Theorem 4.2 (deadlocks, exact) + Theorem 5.14
    // (livelocks, sufficient) + closure — all independent of the ring size.
    let report = StabilizationReport::analyze(&protocol);
    println!("{report}");
    assert!(report.is_self_stabilizing_for_all_k());

    // Watch it converge on a concrete ring after a transient fault.
    let ring = RingInstance::symmetric(&protocol, 12)?;
    let mut sim = Simulator::new(&ring, 42).with_scheduler(Scheduler::Random);
    let legit = ring.space().encode(&[1; 12]);
    let faulty = sim.perturb(legit, 6); // corrupt half the ring
    let outcome = sim.run_from(faulty, 10_000);
    println!(
        "after a 6-variable transient fault on K=12: converged={} in {} steps",
        outcome.converged, outcome.steps
    );
    assert!(outcome.converged);

    // Aggregate convergence statistics from random initial states.
    let stats = sim.convergence_stats(200, 10_000);
    println!(
        "200 random starts: {} converged (mean {:.1} steps, max {})",
        stats.converged, stats.mean_steps, stats.max_steps
    );
    Ok(())
}

//! Fault-tolerance study (extension X1): how far can transient faults push
//! a self-stabilizing protocol, and how long does recovery take — measured
//! both adversarially (worst-case daemon) and on average (random daemon).
//!
//! Run with: `cargo run --example fault_tolerance_study`

use selfstab::global::{faults, RingInstance, Scheduler, Simulator};
use selfstab::protocols::{agreement, sum_not_two};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, protocol, k) in [
        (
            "binary agreement (t01)",
            agreement::binary_agreement_one_sided(),
            10usize,
        ),
        ("sum-not-two", sum_not_two::sum_not_two_solution(), 7),
    ] {
        let ring = RingInstance::symmetric(&protocol, k)?;
        let wc_any = faults::worst_case_recovery(&ring).expect("these protocols strongly converge");
        println!("\n=== {name}, K = {k} ===");
        println!("worst-case recovery from an arbitrary state: {wc_any} steps");
        println!(
            "{:<8} {:>14} {:>16} {:>20} {:>20}",
            "faults", "span states", "span fraction", "worst-case steps", "mean steps (sim)"
        );

        let mut sim = Simulator::new(&ring, 2024).with_scheduler(Scheduler::Random);
        for f in 0..=4usize {
            let span = faults::fault_span(&ring, f);
            let starts: Vec<_> = ring.space().ids().filter(|s| span[s.index()]).collect();
            let frac = starts.len() as f64 / ring.space().len() as f64;
            let wc = faults::worst_case_recovery_from(&ring, starts.iter().copied())
                .expect("span of a convergent protocol recovers");

            // Random-daemon average over perturbed legitimate states.
            let legit = ring
                .space()
                .ids()
                .find(|&s| ring.is_legit(s))
                .expect("non-empty I");
            let trials = 300;
            let mut total = 0usize;
            for _ in 0..trials {
                let start = sim.perturb(legit, f);
                let out = sim.run_from(start, 1_000_000);
                assert!(out.converged);
                total += out.steps;
            }
            println!(
                "{:<8} {:>14} {:>15.1}% {:>20} {:>20.2}",
                f,
                starts.len(),
                100.0 * frac,
                wc,
                total as f64 / trials as f64
            );
        }
    }
    println!("\n(worst-case = longest adversarial schedule; the random daemon is much faster)");
    Ok(())
}

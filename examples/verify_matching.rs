//! Reproduces the paper's deadlock-freedom story for maximal matching
//! (Examples 4.2 and 4.3, Figures 1–3): the generalizable protocol passes
//! Theorem 4.2, the non-generalizable one fails with explicit witness
//! cycles and ring sizes, and DOT renderings of the figures are written to
//! `target/figures/`.
//!
//! Run with: `cargo run --example verify_matching`

use std::fs;

use selfstab::core::{deadlock::DeadlockAnalysis, ltg::Ltg, rcg::Rcg};
use selfstab::global::{check, RingInstance};
use selfstab::protocols::matching;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    fs::create_dir_all("target/figures")?;

    // Figure 1: the continuation relation over all 27 local states.
    let empty = matching::matching_empty();
    let rcg = Rcg::build(&empty);
    fs::write(
        "target/figures/fig1.dot",
        rcg.to_dot(&empty, "fig1-matching-rcg", None),
    )?;
    println!(
        "Fig. 1: RCG over {} local states, {} s-arcs  -> target/figures/fig1.dot",
        rcg.graph().vertex_count(),
        rcg.graph().arc_count()
    );

    // Example 4.2: the generalizable protocol.
    let good = matching::matching_generalizable();
    let da = DeadlockAnalysis::analyze(&good);
    println!("\n=== Example 4.2 (generalizable) ===\n{da}");
    let deadlocks = good.local_deadlocks();
    fs::write(
        "target/figures/fig2.dot",
        Rcg::build(&good).to_dot(&good, "fig2-deadlock-induced", Some(deadlocks.as_bitset())),
    )?;
    let ltg = Ltg::build(&good);
    fs::write("target/figures/fig4.dot", ltg.to_dot(&good, "fig4-ltg"))?;

    // The paper model-checked K = 5..8; so do we.
    for k in 5..=8 {
        let ring = RingInstance::symmetric(&good, k)?;
        let report = check::ConvergenceReport::check(&ring);
        println!(
            "  model check K={k}: deadlocks={} livelock={} closure_ok={}",
            report.illegitimate_deadlocks.len(),
            report.livelock.is_some(),
            report.closure_violation.is_none()
        );
    }

    // Example 4.3: the non-generalizable protocol.
    let bad = matching::matching_non_generalizable();
    let da = DeadlockAnalysis::analyze(&bad);
    println!("\n=== Example 4.3 (non-generalizable) ===\n{da}");
    for w in da.witnesses() {
        let states: Vec<String> = w
            .cycle
            .iter()
            .map(|&s| bad.space().format_compact(s, bad.domain()))
            .collect();
        println!(
            "  witness cycle (len {}): {}",
            w.base_ring_size,
            states.join(" -> ")
        );
    }
    println!(
        "  exact deadlocked ring sizes <= 14: {:?}",
        da.deadlocked_ring_sizes(14)
    );
    println!("  (the paper predicts only multiples of 4 or 6 — see EXPERIMENTS.md erratum)");
    let deadlocks = bad.local_deadlocks();
    fs::write(
        "target/figures/fig3.dot",
        Rcg::build(&bad).to_dot(&bad, "fig3-deadlock-induced", Some(deadlocks.as_bitset())),
    )?;

    // The paper's repair: resolve ⟨left,left,self⟩.
    let lls = bad.space().encode(&[0, 0, 2]);
    let fixed = bad.with_added_transitions(
        "matching-fixed",
        [selfstab::protocol::LocalTransition::new(lls, 1)],
    )?;
    let da = DeadlockAnalysis::analyze(&fixed);
    println!("\nafter resolving ⟨left,left,self⟩: {da}");
    Ok(())
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! path crate provides the small API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! and [`seq::SliceRandom`] (`choose` / `shuffle`).
//!
//! The generator is SplitMix64 — statistically fine for simulations and
//! property tests, deterministic per seed, and *not* cryptographic. Stream
//! values differ from the real `rand::rngs::StdRng` (ChaCha12); nothing in
//! the workspace depends on the exact stream, only on per-seed determinism.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset used: from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform draw from `lo..hi` (requires `lo < hi`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_sample {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_uniform_sample!(u8, u16, u32, u64, usize);

/// High-level draws; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for the real `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one u64 of
            // state, never yields a fixed point.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u8..9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn choose_and_shuffle_cover() {
        let mut r = StdRng::seed_from_u64(2);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.as_slice().choose(&mut r).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let mut v: Vec<usize> = (0..10).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_choose_is_none() {
        let mut r = StdRng::seed_from_u64(3);
        let xs: [u8; 0] = [];
        assert!(xs.as_slice().choose(&mut r).is_none());
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this path crate
//! reimplements the subset the workspace's property suites use:
//!
//! * the [`proptest!`] macro (multiple `#[test]` fns, optional
//!   `#![proptest_config(...)]`, `arg in strategy` bindings);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   [`prop_oneof!`], [`strategy::Just`], [`prelude::any`];
//! * strategies for integer ranges, tuples, `collection::vec`, and
//!   regex-like `&str` patterns (single character-class atoms with `{lo,hi}`
//!   repetition, plus `\PC`);
//! * combinators `prop_map`, `prop_flat_map`, `prop_filter_map`.
//!
//! There is **no shrinking**: a failing case reports its deterministic seed
//! and case index instead. Runs are reproducible — the base seed is fixed
//! per test name and can be overridden with the `PROPTEST_SEED` env var.

#![forbid(unsafe_code)]

/// Deterministic generator shared by all strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

pub mod strategy {
    //! The [`Strategy`] trait, primitive strategies, and combinators.

    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values. `None` means the draw was rejected
    /// (e.g. by `prop_filter_map`) and the case should be retried.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value, or `None` on rejection.
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f`.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Maps through `f`, rejecting draws for which it returns `None`.
        /// The rejection reason is kept for diagnostics only.
        fn prop_filter_map<O, F>(self, _whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap { inner: self, f }
        }
    }

    /// Boxes a strategy, unifying its `Value` type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
            let v = self.inner.generate(rng)?;
            (self.f)(v).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            // Retry locally before bubbling the rejection up to the runner.
            for _ in 0..64 {
                if let Some(v) = self.inner.generate(rng) {
                    if let Some(out) = (self.f)(v) {
                        return Some(out);
                    }
                }
            }
            None
        }
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    if self.start >= self.end {
                        return None;
                    }
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    Some(self.start + rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo > hi {
                        return None;
                    }
                    let span = (hi as u64) - (lo as u64) + 1;
                    Some(lo + rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.generate(rng)?,)+))
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// `any::<T>()` marker strategy.
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> Option<String> {
            Some(crate::string::generate_from_pattern(self, rng))
        }
    }
}

pub mod string {
    //! Regex-like string generation: a sequence of atoms, each an optionally
    //! `{lo,hi}`-quantified character class, `\PC`, or literal character.

    use super::TestRng;

    enum Atom {
        Chars(Vec<char>),
        Printable,
    }

    struct Piece {
        atom: Atom,
        lo: usize,
        hi: usize,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set: Vec<char> = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '\\' => {
                    if let Some(e) = chars.next() {
                        set.push(e);
                        prev = Some(e);
                    }
                }
                '-' => {
                    // A range only if there is a previous char and a next
                    // char that does not close the class.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            let (lo, hi) = (lo as u32, hi as u32);
                            for v in lo..=hi {
                                if let Some(ch) = char::from_u32(v) {
                                    set.push(ch);
                                }
                            }
                            prev = None;
                        }
                        _ => {
                            set.push('-');
                            prev = Some('-');
                        }
                    }
                }
                c => {
                    set.push(c);
                    prev = Some(c);
                }
            }
        }
        if set.is_empty() {
            set.push('a');
        }
        set
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            body.push(c);
        }
        match body.split_once(',') {
            Some((lo, hi)) => {
                let lo = lo.trim().parse().unwrap_or(0);
                let hi = hi.trim().parse().unwrap_or(lo);
                (lo, hi.max(lo))
            }
            None => {
                let n = body.trim().parse().unwrap_or(1);
                (n, n)
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Chars(parse_class(&mut chars)),
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC`: any non-control character (ASCII subset).
                        chars.next(); // consume the class letter
                        Atom::Printable
                    }
                    Some(e) => Atom::Chars(vec![e]),
                    None => Atom::Chars(vec!['\\']),
                },
                c => Atom::Chars(vec![c]),
            };
            let (lo, hi) = parse_quantifier(&mut chars);
            pieces.push(Piece { atom, lo, hi });
        }
        pieces
    }

    /// Generates one string matching the (subset) pattern.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = piece.lo + rng.below((piece.hi - piece.lo + 1) as u64) as usize;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Chars(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Printable => {
                        out.push(char::from(0x20 + rng.below(0x5F) as u8));
                    }
                }
            }
        }
        out
    }
}

pub mod collection {
    //! `proptest::collection::vec`.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    pub trait IntoSizeRange {
        /// `(min_len, max_len)`, both inclusive.
        fn size_bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }
    impl IntoSizeRange for Range<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }
    impl IntoSizeRange for RangeInclusive<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with length in the given bounds.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.size_bounds();
        assert!(lo <= hi, "empty collection size range");
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, error type, and the runner loop.

    use super::TestRng;

    /// Per-`proptest!` configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
        /// Bound on rejected draws before the runner gives up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The inputs were rejected (`prop_assume!`); retry with new ones.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Outcome of one case execution (used by the `proptest!` expansion).
    #[doc(hidden)]
    pub enum CaseOutcome {
        Pass,
        Reject,
        Fail(String),
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs the case closure until `config.cases` accepted cases pass.
    ///
    /// Deterministic: the seed schedule depends only on the test name (and
    /// the `PROPTEST_SEED` env var, when set).
    #[doc(hidden)]
    pub fn execute<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> CaseOutcome,
    {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0xC1A0_5EED_0000_0001);
        let base = base ^ fnv1a(name);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut attempt: u64 = 0;
        while passed < config.cases {
            let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            match case(&mut rng) {
                CaseOutcome::Pass => passed += 1,
                CaseOutcome::Reject => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: too many rejected cases \
                             ({rejected}) after {passed} passes"
                        );
                    }
                }
                CaseOutcome::Fail(msg) => {
                    panic!(
                        "proptest `{name}` failed at case {passed} \
                         (seed {seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — the standard import surface.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    use crate::strategy::{AnyStrategy, Arbitrary};

    /// The canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Declares property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::execute(__config, stringify!($name), |__rng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(&($strat), __rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => {
                                return $crate::test_runner::CaseOutcome::Reject
                            }
                        };
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => $crate::test_runner::CaseOutcome::Pass,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            $crate::test_runner::CaseOutcome::Reject
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(m)) => {
                            $crate::test_runner::CaseOutcome::Fail(m)
                        }
                    }
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{:?}` != `{:?}` ({} != {})",
                            __l, __r, stringify!($left), stringify!($right),
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{:?}` != `{:?}`: {}",
                            __l, __r, format!($($fmt)+),
                        ),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among the listed strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u8..4, any::<bool>()), 0..6)) {
            prop_assert!(v.len() < 6);
            for (a, _b) in v {
                prop_assert!(a < 4);
            }
        }

        #[test]
        fn strings_match_class(s in "[ab]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn filter_map_filters(x in (0u32..100).prop_filter_map("even", |v| {
            if v % 2 == 0 { Some(v) } else { None }
        })) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn flat_map_nests(v in (1usize..=5).prop_flat_map(|n| crate::collection::vec(0u8..2, n))) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    // The macro stamps `#[test]` on the generated fn; nested here it is
    // deliberately unreachable by the harness (we call it by hand).
    #[allow(unnameable_test_items)]
    fn failure_reports_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn printable_pattern_parses() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..50 {
            let s = crate::string::generate_from_pattern("\\PC{0,30}", &mut rng);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}

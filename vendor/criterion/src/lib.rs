//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset used by `crates/bench/benches/*`: `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurements are simple
//! wall-clock means (warm-up followed by timed batches); there is no
//! statistical machinery, plotting, or baseline storage.
//!
//! Set `SELFSTAB_BENCH_QUICK=1` to cap every benchmark at a handful of
//! iterations (used by CI smoke runs).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples (scales the iteration budget).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_text(), self.warm_up, self.measurement, |b| f(b));
        self
    }
}

/// A named parameterized benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`, like upstream criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter (labels come from the group).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group (accepted, unused: the harness
    /// is time-budgeted).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_text());
        run_one(&label, self.warm_up, self.measurement, |b| f(b));
        self
    }

    /// Runs a benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_text());
        run_one(&label, self.warm_up, self.measurement, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra).
    pub fn finish(self) {}
}

/// Conversion of names/ids to display text.
pub trait IntoBenchmarkId {
    /// The rendered benchmark label.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}
impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_owned()
    }
}
impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn quick_mode() -> bool {
    std::env::var_os("SELFSTAB_BENCH_QUICK").is_some_and(|v| v != "0")
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    // Warm-up & calibration: run single iterations until the warm-up budget
    // is spent, tracking the mean to size the measurement batches.
    let warm_budget = if quick_mode() {
        Duration::from_millis(1)
    } else {
        warm_up
    };
    let mut calib_iters = 0u64;
    let calib_start = Instant::now();
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut bench);
        calib_iters += 1;
        if calib_start.elapsed() >= warm_budget || calib_iters >= 1_000 {
            break;
        }
    }
    let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;

    // Measurement: one batch sized to fill the measurement budget.
    let budget = if quick_mode() {
        Duration::from_millis(2)
    } else {
        measurement
    };
    let iters = ((budget.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
    bench.iters = iters;
    f(&mut bench);
    let mean_us = bench.elapsed.as_secs_f64() * 1e6 / iters as f64;
    println!("bench {label}: {mean_us:.2} us/iter ({iters} iters)");
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        std::env::set_var("SELFSTAB_BENCH_QUICK", "1");
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("t");
        g.bench_function("id", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with", 3), &3u32, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}

//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so this path crate
//! implements the subset the workspace uses: the [`Value`] tree, the
//! [`json!`] macro (object / array / expression forms), [`to_string_pretty`],
//! [`from_str`], indexing by key and position, and comparisons against
//! primitive literals.
//!
//! Object keys are stored sorted (like upstream `serde_json` without the
//! `preserve_order` feature), so output is deterministic.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as a signed/unsigned integer or a float).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

/// A JSON number.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Float.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
    }
}

impl Number {
    fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl Value {
    /// `true` iff the value is `null` (also returned for missing keys).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// ---- conversions ---------------------------------------------------------

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::PosInt(v as u64)) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                if v < 0 {
                    Value::Number(Number::NegInt(v as i64))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// ---- comparisons against literals (used by tests) ------------------------

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if n.as_f64() == *other as f64)
            }
        }
    )*};
}
eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---- construction macro --------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports the forms the workspace uses: `null`, object literals with
/// string-literal keys, array literals of expressions, nested objects, and
/// arbitrary Rust expressions convertible with [`From`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $crate::json_object_entries!(object; $($body)*);
        $crate::Value::Object(object)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([
            $( $crate::Value::from($elem) ),*
        ])))
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: munches `"key": value` pairs for [`json!`] object literals.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_entries!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_entries!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_entries!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.insert($key.to_string(), $crate::Value::from($value));
        $crate::json_object_entries!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : $value:expr) => {
        $obj.insert($key.to_string(), $crate::Value::from($value));
    };
}

// ---- serialization -------------------------------------------------------

/// Error type for serialization/deserialization.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => out.push_str(&v.to_string()),
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) if a.is_empty() => out.push_str("[]"),
        Value::Array(a) => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < a.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if m.is_empty() => out.push_str("{}"),
        Value::Object(m) => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
                if i + 1 < m.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a value with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                let mut s = String::new();
                write_number(&mut s, n);
                write!(f, "{s}")
            }
            Value::String(s) => {
                let mut out = String::new();
                escape_into(&mut out, s);
                write!(f, "{out}")
            }
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut out = String::new();
                    escape_into(&mut out, k);
                    write!(f, "{out}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

// ---- parsing -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, Error> {
        Err(Error {
            message: format!("{message} at byte {}", self.pos),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte position.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..]).map_err(|_| Error {
                        message: format!("invalid UTF-8 at byte {start}"),
                    })?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if text.is_empty() {
            return self.err("expected a value");
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<i64>() {
                    return Ok(Value::Number(Number::NegInt(-v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::Number(Number::Float(v))),
            Err(_) => self.err("malformed number"),
        }
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects_and_exprs() {
        let n = 3usize;
        let v = json!({
            "a": 1,
            "b": { "c": true, "d": null },
            "e": vec![1u32, 2, 3],
            "f": n,
            "g": Some("x".to_string()),
            "h": None::<String>,
        });
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"]["c"], true);
        assert!(v["b"]["d"].is_null());
        assert_eq!(v["e"][2], 3);
        assert_eq!(v["f"], 3usize);
        assert_eq!(v["g"], "x");
        assert!(v["h"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_roundtrip() {
        let v = json!({"k": [1, 2], "s": "a\"b", "n": null, "f": false});
        let text = to_string_pretty(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_numbers_and_nesting() {
        let v = from_str(r#"{"a": [1, -2, 3.5], "b": {"c": "hi"}}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["b"]["c"], "hi");
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("1 2").is_err());
    }
}

//! # selfstab — self-stabilization of parameterized rings by local reasoning
//!
//! A verification and synthesis toolkit reproducing Farahat & Ebnenasir,
//! *Local Reasoning for Global Convergence of Parameterized Rings*
//! (ICDCS 2012 / Michigan Tech TR CS-TR-11-04).
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`protocol`] — the parameterized-protocol model and guarded-command DSL.
//! * [`core`] — the paper's contribution: Right Continuation Graphs,
//!   Local Transition Graphs, the Theorem 4.2 deadlock-freedom check and the
//!   Theorem 5.14 livelock-freedom certificate.
//! * [`global`] — an explicit-state global model checker and simulator
//!   (ground truth for fixed ring sizes).
//! * [`synth`] — the Section 6 synthesis methodology, plus a fixed-`K`
//!   global baseline synthesizer.
//! * [`protocols`] — the paper's example protocols, ready to analyze.
//! * [`tree`] — the oriented-tree extension (the paper's future work #1):
//!   a reachability-based deadlock theorem for every rooted tree at once.
//! * [`graph`] — the underlying graph algorithms.
//!
//! # Quickstart
//!
//! Verify that binary agreement with the single recovery action
//! `x[r-1] == 1 && x[r] == 0 -> x[r] := 1` is self-stabilizing for *every*
//! ring size:
//!
//! ```
//! use selfstab::protocols::agreement;
//! use selfstab::core::StabilizationReport;
//!
//! let p = agreement::binary_agreement_one_sided();
//! let report = StabilizationReport::analyze(&p);
//! assert!(report.deadlock.is_free_for_all_k());
//! assert!(report.livelock.certified_free());
//! ```

#![forbid(unsafe_code)]

pub use selfstab_core as core;
pub use selfstab_global as global;
pub use selfstab_graph as graph;
pub use selfstab_protocol as protocol;
pub use selfstab_protocols as protocols;
pub use selfstab_synth as synth;
pub use selfstab_tree as tree;
